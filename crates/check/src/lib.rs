//! Model-checker-style validation of the reproduction's measurement
//! claims.
//!
//! The workspace makes strong determinism promises: the same campaign
//! measures the same numbers regardless of the event-scheduler backend,
//! the worker pool, or the run cache, and fault injection lands each
//! disturbance in exactly the Table-2 bucket its class targets. This
//! crate *checks* those promises the way a model checker would — by
//! re-executing each campaign case under systematically permuted
//! simultaneous-event orders ([`cedar_sim::TieBreak`]: FIFO, LIFO, and
//! a seeded shuffle) and across every execution path (heap vs calendar
//! scheduler, sequential vs pooled runner, cold vs warm cache, library
//! vs service lowering), then asserting a registry of typed invariant
//! oracles ([`OracleKind`]) over the results.
//!
//! What the tie-break exploration established empirically (and the
//! oracles therefore encode): for a *fixed* policy every execution path
//! is byte-identical, and single-cluster (P1) runs are byte-identical
//! under *every* policy — but on parallel configurations the
//! simultaneous-event order is physically meaningful (port FCFS
//! arbitration, lock grant order), so completion time legitimately
//! moves by a few percent between policies. The tie-stability oracle
//! hence asserts a *stable core* (coverage, conservation,
//! configuration identity) plus a bounded completion-time band rather
//! than bit-equality; the parity oracles stay byte-exact.
//!
//! On violation, a delta-debugging shrinker ([`shrink`]) minimizes the
//! `(application, configuration, fault level, workload scale,
//! perturbation seed)` tuple to the smallest case that still violates
//! the same oracle, and the reproducer is written as ordered JSON to
//! `results/CHECK_violations.json` — replayable via the
//! `CEDAR_CHECK_REPLAY` environment knob ([`CheckOptions`]).

pub mod case;
pub mod fingerprint;
pub mod harness;
pub mod options;
pub mod oracle;
pub mod report;
pub mod shrink;

pub use case::{corpus, smoke_corpus, CheckCase};
pub use fingerprint::{fingerprint, fingerprint_text, stable_core};
pub use harness::{CheckConfig, Harness, Sabotage};
pub use options::CheckOptions;
pub use oracle::{OracleKind, Violation};
pub use report::CheckReport;
pub use shrink::{shrink, ShrinkOutcome};
