//! The violation report: `CHECK_violations.json`.
//!
//! The checker always writes the report — an empty `violations` array
//! *is* the result when every oracle holds, and CI archives the file
//! either way. Ordered JSON via the workspace writer, so two clean
//! runs of the same corpus produce byte-identical reports (counters
//! are deterministic; no wall-clock field exists).

use std::io;
use std::path::Path;

use cedar_obs::json::{self, Obj};
use cedar_obs::Counters;

use crate::oracle::{OracleKind, Violation};

/// One checker invocation's summary.
#[derive(Debug)]
pub struct CheckReport {
    /// Cases evaluated.
    pub cases: u64,
    /// Simulations executed.
    pub runs: u64,
    /// Every violation found, with shrunk reproducers where the
    /// shrinker ran.
    pub violations: Vec<Violation>,
    /// The harness's `check.*` counter rollup.
    pub counters: Counters,
}

impl CheckReport {
    /// Builds a report from the harness state after a corpus sweep.
    pub fn new(violations: Vec<Violation>, counters: Counters) -> CheckReport {
        CheckReport {
            cases: counters.get("check.cases"),
            runs: counters.get("check.runs"),
            violations,
            counters,
        }
    }

    /// Renders the report as ordered JSON (trailing newline included).
    pub fn render(&self) -> String {
        let mut o = Obj::new();
        o.str("schema", "cedar-check/1");
        o.raw(
            "oracles",
            json::str_array(OracleKind::ALL.iter().map(|k| k.name())),
        );
        o.u64("cases", self.cases);
        o.u64("runs", self.runs);
        o.u64("violations_total", self.violations.len() as u64);
        o.raw(
            "violations",
            json::array(self.violations.iter().map(|v| v.to_json())),
        );
        let mut counters = Obj::new();
        for (name, value) in self.counters.iter() {
            counters.u64(name, value);
        }
        o.raw("counters", counters.finish());
        let mut out = o.finish();
        out.push('\n');
        out
    }

    /// Writes the report to `path`, creating parent directories.
    pub fn write(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::CheckCase;
    use cedar_hw::Configuration;

    fn sample() -> CheckReport {
        let mut counters = Counters::default();
        counters.add("check.cases", 2);
        counters.add("check.runs", 19);
        counters.add("check.oracles.pass", 15);
        counters.add("check.oracles.violation", 1);
        CheckReport::new(
            vec![Violation {
                oracle: OracleKind::TieStability,
                case: CheckCase {
                    app: "OCEAN",
                    configuration: Configuration::P8,
                    fault_level: 0,
                    shrink: 16,
                    shuffle_seed: 9,
                },
                detail: "completion time outside band".to_string(),
            }],
            counters,
        )
    }

    #[test]
    fn report_parses_and_carries_the_registry() {
        let r = sample();
        let parsed = json::parse(&r.render()).unwrap();
        assert_eq!(
            parsed.get("schema").and_then(|s| s.as_str()),
            Some("cedar-check/1")
        );
        assert_eq!(parsed.get("cases").and_then(|c| c.as_u64()), Some(2));
        assert_eq!(
            parsed.get("violations_total").and_then(|c| c.as_u64()),
            Some(1)
        );
        assert!(r.render().contains("\"tie_stability\""));
        assert!(r.render().contains("\"check.oracles.pass\":15"));
        assert!(r.render().ends_with("}\n"));
    }

    #[test]
    fn empty_report_is_the_clean_result() {
        let report = CheckReport::new(Vec::new(), Counters::default());
        let parsed = json::parse(&report.render()).unwrap();
        assert_eq!(
            parsed.get("violations_total").and_then(|c| c.as_u64()),
            Some(0)
        );
    }

    #[test]
    fn write_creates_parents() {
        let dir = std::env::temp_dir().join(format!("cedar-check-report-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested").join("CHECK_violations.json");
        sample().write(&path).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("cedar-check/1"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
