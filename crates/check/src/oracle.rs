//! The typed invariant-oracle registry and the violation record.
//!
//! Each [`OracleKind`] names one law of the reproduction. The harness
//! evaluates every applicable oracle against every case; a failed
//! assertion becomes a [`Violation`] carrying the oracle, the case's
//! replay token, and a human-readable detail — serialized as ordered
//! JSON into `CHECK_violations.json` and convertible to the workspace's
//! typed [`CedarError::CheckViolation`].

use cedar_obs::json::Obj;
use cedar_obs::CedarError;

use crate::case::CheckCase;

/// One checked law of the reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleKind {
    /// Completion-time conservation: every iteration executes exactly
    /// once, task breakdowns never exceed the wall clock, and on every
    /// unsaturated cluster the Figure-3 categories (user + OS)
    /// partition completion time exactly.
    Conservation,
    /// Re-running the identical case reproduces the measurement
    /// fingerprint byte for byte.
    Determinism,
    /// Tie-break stability: under LIFO and seeded-shuffle event
    /// orders, the stable core (coverage, identity, conservation)
    /// holds exactly, completion time stays inside a bounded band, and
    /// single-cluster runs are byte-identical (simultaneous events on
    /// one cluster have no physically meaningful order).
    TieStability,
    /// Heap and calendar event schedulers produce byte-identical
    /// measurements under every tie-break policy.
    SchedParity,
    /// The pooled campaign runner measures exactly what the sequential
    /// reference runner measures.
    WorkerParity,
    /// A warm (cache-hit) run replays byte-identically to the cold run
    /// that populated the cache.
    CacheParity,
    /// Fault attribution: each injected fault class moves its targeted
    /// Table-2 bucket by at least the injected cost, and untargeted
    /// buckets move only with organic growth.
    FaultAttribution,
    /// The service lowering (`CampaignSpec`) reaches the same machine
    /// and embeds the same measurement fingerprint as the library path.
    ServeParity,
}

impl OracleKind {
    /// Every oracle, in evaluation order.
    pub const ALL: [OracleKind; 8] = [
        OracleKind::Conservation,
        OracleKind::Determinism,
        OracleKind::TieStability,
        OracleKind::SchedParity,
        OracleKind::WorkerParity,
        OracleKind::CacheParity,
        OracleKind::FaultAttribution,
        OracleKind::ServeParity,
    ];

    /// Stable registry name (used in reports, counters, and
    /// [`CedarError::CheckViolation::oracle`]).
    pub fn name(self) -> &'static str {
        match self {
            OracleKind::Conservation => "conservation",
            OracleKind::Determinism => "determinism",
            OracleKind::TieStability => "tie_stability",
            OracleKind::SchedParity => "sched_parity",
            OracleKind::WorkerParity => "worker_parity",
            OracleKind::CacheParity => "cache_parity",
            OracleKind::FaultAttribution => "fault_attribution",
            OracleKind::ServeParity => "serve_parity",
        }
    }

    /// The pass counter this oracle bumps in the harness rollup.
    pub fn pass_counter(self) -> &'static str {
        match self {
            OracleKind::Conservation => "check.oracle.conservation.pass",
            OracleKind::Determinism => "check.oracle.determinism.pass",
            OracleKind::TieStability => "check.oracle.tie_stability.pass",
            OracleKind::SchedParity => "check.oracle.sched_parity.pass",
            OracleKind::WorkerParity => "check.oracle.worker_parity.pass",
            OracleKind::CacheParity => "check.oracle.cache_parity.pass",
            OracleKind::FaultAttribution => "check.oracle.fault_attribution.pass",
            OracleKind::ServeParity => "check.oracle.serve_parity.pass",
        }
    }

    /// The violation counter this oracle bumps in the harness rollup.
    pub fn violation_counter(self) -> &'static str {
        match self {
            OracleKind::Conservation => "check.oracle.conservation.violation",
            OracleKind::Determinism => "check.oracle.determinism.violation",
            OracleKind::TieStability => "check.oracle.tie_stability.violation",
            OracleKind::SchedParity => "check.oracle.sched_parity.violation",
            OracleKind::WorkerParity => "check.oracle.worker_parity.violation",
            OracleKind::CacheParity => "check.oracle.cache_parity.violation",
            OracleKind::FaultAttribution => "check.oracle.fault_attribution.violation",
            OracleKind::ServeParity => "check.oracle.serve_parity.violation",
        }
    }
}

impl std::fmt::Display for OracleKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One oracle violation, bound to the case that produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which law broke.
    pub oracle: OracleKind,
    /// The violating case.
    pub case: CheckCase,
    /// What the oracle saw (expected vs actual, in prose).
    pub detail: String,
}

impl Violation {
    /// The violation as an ordered-JSON object — one element of the
    /// `violations` array in `CHECK_violations.json`.
    pub fn to_json(&self) -> String {
        let mut case = Obj::new();
        case.str("app", self.case.app)
            .u64("processors", u64::from(self.case.configuration.total_ces()))
            .u64("fault_level", u64::from(self.case.fault_level))
            .u64("shrink", u64::from(self.case.shrink))
            .str("shuffle_seed", &format!("{:#x}", self.case.shuffle_seed));
        let mut o = Obj::new();
        o.str("oracle", self.oracle.name())
            .str("detail", &self.detail)
            .str("replay", &self.case.replay_token())
            .raw("case", case.finish());
        o.finish()
    }

    /// The violation as the workspace's typed error.
    pub fn to_error(&self) -> CedarError {
        CedarError::CheckViolation {
            oracle: self.oracle.name().to_string(),
            detail: format!("{} [{}]", self.detail, self.case.replay_token()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedar_hw::Configuration;
    use cedar_obs::json;

    fn violation() -> Violation {
        Violation {
            oracle: OracleKind::FaultAttribution,
            case: CheckCase {
                app: "MDG",
                configuration: Configuration::P32,
                fault_level: 2,
                shrink: 16,
                shuffle_seed: 0x5EED,
            },
            detail: "Cpi delta 10 < injected 20".to_string(),
        }
    }

    #[test]
    fn registry_names_are_unique_and_stable() {
        let names: Vec<_> = OracleKind::ALL.iter().map(|o| o.name()).collect();
        let unique: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(unique.len(), OracleKind::ALL.len());
        for o in OracleKind::ALL {
            assert!(o.pass_counter().ends_with(".pass"));
            assert!(o.violation_counter().ends_with(".violation"));
            assert!(o.pass_counter().contains(o.name()));
        }
    }

    #[test]
    fn violation_serializes_with_replay_token() {
        let v = violation();
        let parsed = json::parse(&v.to_json()).unwrap();
        assert_eq!(
            parsed.get("oracle").and_then(|x| x.as_str()),
            Some("fault_attribution")
        );
        assert_eq!(
            parsed.get("replay").and_then(|x| x.as_str()),
            Some("app=MDG;procs=32;faults=2;shrink=16;seed=0x5eed")
        );
        assert_eq!(
            parsed
                .get("case")
                .and_then(|c| c.get("processors"))
                .and_then(|x| x.as_u64()),
            Some(32)
        );
        // The replay token round-trips back to the violating case.
        let replay = parsed.get("replay").unwrap().as_str().unwrap();
        assert_eq!(CheckCase::parse(replay).unwrap(), v.case);
    }

    #[test]
    fn violation_lowers_to_the_typed_error() {
        let err = violation().to_error();
        assert_eq!(err.kind(), "check_violation");
        assert_eq!(err.http_status(), 500);
        assert!(err.to_string().contains("fault_attribution"));
        assert!(err.to_string().contains("app=MDG"));
    }
}
