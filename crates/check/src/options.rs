//! The checker's environment surface.
//!
//! Exactly one knob, read in exactly one place (the same discipline as
//! [`cedar_obs::RunOptions`]): `CEDAR_CHECK_REPLAY` holds a replay
//! token from a violation report (`app=…;procs=…;faults=…;shrink=…;
//! seed=…`), and when set, the `check` binary runs that single case
//! through the full typed path instead of the corpus. Everything else
//! (shrink, smoke, scheduler) rides on `RunOptions::from_env`.

use crate::case::CheckCase;

/// Parsed checker options.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CheckOptions {
    /// A single case to replay instead of the corpus, from
    /// `CEDAR_CHECK_REPLAY`.
    pub replay: Option<CheckCase>,
}

impl CheckOptions {
    /// Parses an explicit replay-token value (the testable core of
    /// [`CheckOptions::from_env`]). Empty and unset mean "no replay".
    pub fn parse(replay: Option<&str>) -> Result<CheckOptions, String> {
        match replay {
            None | Some("") => Ok(CheckOptions { replay: None }),
            Some(token) => Ok(CheckOptions {
                replay: Some(
                    CheckCase::parse(token)
                        .map_err(|e| format!("CEDAR_CHECK_REPLAY `{token}`: {e}"))?,
                ),
            }),
        }
    }

    /// Reads `CEDAR_CHECK_REPLAY` from the process environment. The
    /// only `std::env` read in the crate.
    pub fn from_env() -> Result<CheckOptions, String> {
        CheckOptions::parse(std::env::var("CEDAR_CHECK_REPLAY").ok().as_deref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedar_hw::Configuration;

    #[test]
    fn unset_and_empty_mean_no_replay() {
        assert_eq!(CheckOptions::parse(None).unwrap().replay, None);
        assert_eq!(CheckOptions::parse(Some("")).unwrap().replay, None);
    }

    #[test]
    fn replay_token_parses_to_a_case() {
        let o =
            CheckOptions::parse(Some("app=MDG;procs=32;faults=2;shrink=16;seed=0x5eed")).unwrap();
        let case = o.replay.expect("replay case");
        assert_eq!(case.app, "MDG");
        assert_eq!(case.configuration, Configuration::P32);
        assert_eq!(case.fault_level, 2);
        assert_eq!(case.shuffle_seed, 0x5EED);
    }

    #[test]
    fn bad_tokens_fail_with_the_knob_name() {
        let err = CheckOptions::parse(Some("app=NOPE;procs=8")).unwrap_err();
        assert!(err.contains("CEDAR_CHECK_REPLAY"), "{err}");
        assert!(err.contains("unknown application"), "{err}");
    }
}
