//! The cluster concurrency control bus.
//!
//! Each Cedar cluster has a dedicated bus enabling "fast cluster-level
//! parallel loop distribution, and fast synchronization of processors
//! within a cluster" (§2). The inner `cdoall` loop of the hierarchical
//! construct is distributed over this bus, and the CEs of a cluster
//! synchronize on it at the end of an `xdoall` before one of them
//! re-enters the runtime library (§2) — all without generating any
//! network traffic, which is precisely why the paper concludes
//! clustering helps (§6).

use cedar_sim::{Cycles, SimTime};

use crate::config::ClusterConfig;

/// The concurrency bus of one cluster: dispatch cost model plus an
/// arrival-counting barrier.
#[derive(Debug, Clone)]
pub struct ConcurrencyBus {
    dispatch_cost: Cycles,
    barrier_cost: Cycles,
    dispatches: u64,
    barriers: u64,
}

impl ConcurrencyBus {
    /// Creates the bus with the cluster's timing parameters.
    pub fn new(cfg: &ClusterConfig) -> Self {
        ConcurrencyBus {
            dispatch_cost: cfg.cbus_dispatch,
            barrier_cost: cfg.cbus_barrier,
            dispatches: 0,
            barriers: 0,
        }
    }

    /// Cost to fan a `cdoall` iteration range out to the cluster's CEs.
    /// Counted per dispatch for the utilization report.
    pub fn dispatch(&mut self) -> Cycles {
        self.dispatches += 1;
        self.dispatch_cost
    }

    /// Cost added after the last CE arrives at an intra-cluster barrier.
    pub fn barrier_release_cost(&mut self) -> Cycles {
        self.barriers += 1;
        self.barrier_cost
    }

    /// Dispatches performed.
    pub fn dispatches(&self) -> u64 {
        self.dispatches
    }

    /// Barriers completed.
    pub fn barriers(&self) -> u64 {
        self.barriers
    }
}

/// An intra-cluster barrier tracked on the concurrency bus.
///
/// CEs call [`arrive`](CbusBarrier::arrive); the call that completes the
/// barrier returns the release time (last arrival + bus release cost),
/// at which every participating CE resumes.
///
/// # Example
///
/// ```
/// use cedar_hw::cbus::CbusBarrier;
/// use cedar_sim::Cycles;
///
/// let mut b = CbusBarrier::new(3, Cycles(8));
/// assert_eq!(b.arrive(Cycles(10)), None);
/// assert_eq!(b.arrive(Cycles(20)), None);
/// assert_eq!(b.arrive(Cycles(15)), Some(Cycles(28))); // 20 + 8
/// ```
#[derive(Debug, Clone)]
pub struct CbusBarrier {
    expected: u16,
    arrived: u16,
    latest: SimTime,
    release_cost: Cycles,
}

impl CbusBarrier {
    /// Creates a barrier expecting `expected` arrivals.
    ///
    /// # Panics
    ///
    /// Panics if `expected` is zero.
    pub fn new(expected: u16, release_cost: Cycles) -> Self {
        assert!(expected > 0, "barrier must expect at least one arrival");
        CbusBarrier {
            expected,
            arrived: 0,
            latest: Cycles::ZERO,
            release_cost,
        }
    }

    /// Records an arrival at `now`. Returns `Some(release_time)` when this
    /// arrival completes the barrier; the barrier then resets for reuse.
    ///
    /// # Panics
    ///
    /// Panics if more CEs arrive than expected between releases.
    pub fn arrive(&mut self, now: SimTime) -> Option<SimTime> {
        assert!(self.arrived < self.expected, "barrier over-subscribed");
        self.arrived += 1;
        self.latest = self.latest.max(now);
        if self.arrived == self.expected {
            let release = self.latest + self.release_cost;
            self.arrived = 0;
            self.latest = Cycles::ZERO;
            Some(release)
        } else {
            None
        }
    }

    /// Arrivals currently waiting.
    pub fn waiting(&self) -> u16 {
        self.arrived
    }

    /// Expected arrival count.
    pub fn expected(&self) -> u16 {
        self.expected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn barrier_releases_at_last_arrival_plus_cost() {
        let mut b = CbusBarrier::new(4, Cycles(8));
        assert_eq!(b.arrive(Cycles(5)), None);
        assert_eq!(b.arrive(Cycles(50)), None);
        assert_eq!(b.arrive(Cycles(10)), None);
        assert_eq!(b.waiting(), 3);
        assert_eq!(b.arrive(Cycles(30)), Some(Cycles(58)));
    }

    #[test]
    fn barrier_resets_for_reuse() {
        let mut b = CbusBarrier::new(2, Cycles(1));
        assert_eq!(b.arrive(Cycles(0)), None);
        assert_eq!(b.arrive(Cycles(0)), Some(Cycles(1)));
        assert_eq!(b.arrive(Cycles(100)), None);
        assert_eq!(b.arrive(Cycles(200)), Some(Cycles(201)));
    }

    #[test]
    fn single_ce_barrier_is_immediate() {
        let mut b = CbusBarrier::new(1, Cycles(8));
        assert_eq!(b.arrive(Cycles(7)), Some(Cycles(15)));
    }

    #[test]
    #[should_panic(expected = "at least one arrival")]
    fn zero_expected_rejected() {
        CbusBarrier::new(0, Cycles(0));
    }

    #[test]
    fn release_time_ignores_arrival_order() {
        let mut early_last = CbusBarrier::new(2, Cycles(3));
        early_last.arrive(Cycles(90));
        let a = early_last.arrive(Cycles(10));
        let mut late_last = CbusBarrier::new(2, Cycles(3));
        late_last.arrive(Cycles(10));
        let b = late_last.arrive(Cycles(90));
        assert_eq!(a, b, "release depends on the max arrival time only");
    }

    #[test]
    fn bus_counts_usage() {
        let mut bus = ConcurrencyBus::new(&ClusterConfig::cedar());
        let d = bus.dispatch();
        let r = bus.barrier_release_cost();
        assert_eq!(d, Cycles(6));
        assert_eq!(r, Cycles(8));
        assert_eq!(bus.dispatches(), 1);
        assert_eq!(bus.barriers(), 1);
    }
}
