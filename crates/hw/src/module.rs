//! A global-memory module: FCFS server with atomic synchronization ops.

use cedar_sim::{Cycles, SimTime};

use crate::packet::MemOp;

/// Written words a module keeps inline before spilling to the heap.
const INLINE_WORDS: usize = 4;

/// Sparse word storage sized for reality: only synchronization words
/// (locks, flags, tickets, join counters) are ever *written*, and the
/// mod-`n` interleave spreads those across modules, so a module holds
/// zero to two written words in steady state. A fixed inline array keeps
/// the hot `Read` path (probe, miss, return 0) allocation-free and
/// cache-resident; anything past the inline bound spills to a vector.
#[derive(Debug, Clone, Default)]
struct WordStore {
    inline: [(u64, u64); INLINE_WORDS],
    inline_len: usize,
    spill: Vec<(u64, u64)>,
}

impl WordStore {
    fn get(&self, dword: u64) -> u64 {
        for &(k, v) in &self.inline[..self.inline_len] {
            if k == dword {
                return v;
            }
        }
        for &(k, v) in &self.spill {
            if k == dword {
                return v;
            }
        }
        0
    }

    fn set(&mut self, dword: u64, value: u64) {
        for entry in &mut self.inline[..self.inline_len] {
            if entry.0 == dword {
                entry.1 = value;
                return;
            }
        }
        for entry in &mut self.spill {
            if entry.0 == dword {
                entry.1 = value;
                return;
            }
        }
        if self.inline_len < INLINE_WORDS {
            self.inline[self.inline_len] = (dword, value);
            self.inline_len += 1;
        } else {
            self.spill.push((dword, value));
        }
    }
}

/// One of the 32 independent global-memory modules.
///
/// The module serializes requests (busy for `service` cycles per request —
/// 4 on Cedar, §7) and pipelines the DRAM `access` component. Lock, flag
/// and counter words are stored sparsely; data words read as zero, which
/// is irrelevant to timing.
#[derive(Debug, Clone)]
pub struct MemoryModule {
    service: Cycles,
    access: Cycles,
    free_at: SimTime,
    words: WordStore,
    requests: u64,
    sync_requests: u64,
    busy: Cycles,
    queued: Cycles,
}

impl MemoryModule {
    /// Creates an idle module with the given serialization and access
    /// latencies.
    pub fn new(service: Cycles, access: Cycles) -> Self {
        MemoryModule {
            service,
            access,
            free_at: Cycles::ZERO,
            words: WordStore::default(),
            requests: 0,
            sync_requests: 0,
            busy: Cycles::ZERO,
            queued: Cycles::ZERO,
        }
    }

    /// Serves a request arriving at `now` against double-word `dword`.
    /// Returns `(response_ready_at, value)` where `value` follows the
    /// semantics of [`MemOp`].
    pub fn serve(&mut self, dword: u64, op: MemOp, now: SimTime) -> (SimTime, u64) {
        let start = now.max(self.free_at);
        self.queued += start - now;
        self.free_at = start + self.service;
        self.busy += self.service;
        self.requests += 1;
        if op.is_sync() {
            self.sync_requests += 1;
        }
        let value = self.apply(dword, op);
        (start + self.service + self.access, value)
    }

    fn apply(&mut self, dword: u64, op: MemOp) -> u64 {
        match op {
            MemOp::Read => self.words.get(dword),
            MemOp::Write(v) => {
                self.words.set(dword, v);
                0
            }
            MemOp::TestAndSet => {
                let old = self.words.get(dword);
                self.words.set(dword, 1);
                old
            }
            MemOp::Unset => {
                self.words.set(dword, 0);
                0
            }
            MemOp::FetchAdd(d) => {
                let old = self.words.get(dword);
                self.words.set(dword, old.wrapping_add_signed(d));
                old
            }
        }
    }

    /// Peeks at a stored word without consuming module time (test and
    /// debugging aid; not reachable from simulated CEs).
    pub fn peek(&self, dword: u64) -> u64 {
        self.words.get(dword)
    }

    /// Requests served so far.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Synchronization (TAS/Unset/FetchAdd) requests served so far — high
    /// counts on a single module indicate a hot spot.
    pub fn sync_requests(&self) -> u64 {
        self.sync_requests
    }

    /// Cumulative service time.
    pub fn busy(&self) -> Cycles {
        self.busy
    }

    /// Cumulative queueing delay at this module.
    pub fn queued(&self) -> Cycles {
        self.queued
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn module() -> MemoryModule {
        MemoryModule::new(Cycles(4), Cycles(8))
    }

    #[test]
    fn read_of_untouched_word_is_zero() {
        let mut m = module();
        let (ready, v) = m.serve(10, MemOp::Read, Cycles(0));
        assert_eq!(v, 0);
        assert_eq!(ready, Cycles(12)); // 4 service + 8 access
    }

    #[test]
    fn write_then_read() {
        let mut m = module();
        m.serve(7, MemOp::Write(42), Cycles(0));
        let (_, v) = m.serve(7, MemOp::Read, Cycles(100));
        assert_eq!(v, 42);
    }

    #[test]
    fn test_and_set_returns_old_and_sets_one() {
        let mut m = module();
        let (_, first) = m.serve(3, MemOp::TestAndSet, Cycles(0));
        let (_, second) = m.serve(3, MemOp::TestAndSet, Cycles(10));
        assert_eq!(first, 0, "first TAS acquires");
        assert_eq!(second, 1, "second TAS sees the lock held");
        m.serve(3, MemOp::Unset, Cycles(20));
        let (_, third) = m.serve(3, MemOp::TestAndSet, Cycles(30));
        assert_eq!(third, 0, "TAS after Unset acquires again");
    }

    #[test]
    fn fetch_add_returns_old_value() {
        let mut m = module();
        let (_, a) = m.serve(5, MemOp::FetchAdd(1), Cycles(0));
        let (_, b) = m.serve(5, MemOp::FetchAdd(1), Cycles(10));
        let (_, c) = m.serve(5, MemOp::FetchAdd(-2), Cycles(20));
        assert_eq!((a, b, c), (0, 1, 2));
        assert_eq!(m.peek(5), 0);
    }

    #[test]
    fn simultaneous_requests_serialize_four_cycles_apart() {
        let mut m = module();
        let (r1, _) = m.serve(0, MemOp::Read, Cycles(0));
        let (r2, _) = m.serve(1, MemOp::Read, Cycles(0));
        let (r3, _) = m.serve(2, MemOp::Read, Cycles(0));
        assert_eq!(r1, Cycles(12));
        assert_eq!(r2, Cycles(16)); // queued 4 cycles
        assert_eq!(r3, Cycles(20)); // queued 8 cycles
        assert_eq!(m.queued(), Cycles(12));
    }

    #[test]
    fn statistics_track_sync_ops() {
        let mut m = module();
        m.serve(0, MemOp::Read, Cycles(0));
        m.serve(0, MemOp::TestAndSet, Cycles(0));
        m.serve(0, MemOp::FetchAdd(1), Cycles(0));
        assert_eq!(m.requests(), 3);
        assert_eq!(m.sync_requests(), 2);
        assert_eq!(m.busy(), Cycles(12));
    }

    #[test]
    fn word_store_spills_past_inline_bound() {
        let mut m = module();
        let n = INLINE_WORDS as u64 + 3;
        for d in 0..n {
            m.serve(d, MemOp::Write(d + 100), Cycles(d * 20));
        }
        for d in 0..n {
            assert_eq!(m.peek(d), d + 100, "word {d} survives the spill");
        }
        m.serve(0, MemOp::Write(7), Cycles(1_000)); // inline update
        m.serve(n - 1, MemOp::Write(9), Cycles(1_100)); // spill update
        assert_eq!((m.peek(0), m.peek(n - 1)), (7, 9));
    }

    #[test]
    fn paper_example_back_to_back_same_module() {
        // §7: "if the processor issues two requests in successive clock
        // cycles to the same memory module the second one would be
        // delayed" — by 3 cycles here (arrives at t=1, module busy to 4).
        let mut m = module();
        m.serve(0, MemOp::Read, Cycles(0));
        let before = m.queued();
        m.serve(32, MemOp::Read, Cycles(1)); // same module, next cycle
        assert_eq!(m.queued() - before, Cycles(3));
    }
}
