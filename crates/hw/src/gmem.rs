//! The complete global-memory system: forward network, memory modules and
//! reverse network, composed as one event-driven component.

use cedar_sim::stats::LatencyHistogram;
use cedar_sim::{Cycles, Outbox, SimTime};

use crate::switch::PortBank;

use crate::addr::GlobalAddr;
use crate::config::NetConfig;
use crate::module::MemoryModule;
use crate::net::DeltaNet;
use crate::packet::{MemOp, MemRequest, MemResponse, RequestId};
use crate::topology::{CeId, ModuleId};

/// Internal events of the global-memory system. `cedar-core` wraps these
/// in its master event enum and feeds them back into [`GlobalMemorySystem::handle`].
#[derive(Debug, Clone, Copy)]
pub enum GmemEvent {
    /// Request packet arrives at its stage-1 (forward) switch.
    FwdStage1(MemRequest),
    /// Request packet arrives at its stage-2 (forward) switch.
    FwdStage2(MemRequest),
    /// Request packet arrives at its memory module.
    AtModule(MemRequest),
    /// Response packet arrives at its stage-1 (reverse) switch.
    RevStage1(MemResponse),
    /// Response packet arrives at its stage-2 (reverse) switch.
    RevStage2(MemResponse),
    /// Response packet reaches the requesting CE's Global Interface.
    Delivered(MemResponse),
}

/// Output of one `handle` step: a response has reached its CE.
#[derive(Debug, Clone, Copy)]
pub enum GmemOutput {
    /// Deliver `MemResponse` to `MemResponse::ce`.
    Deliver(MemResponse),
}

/// Aggregate contention statistics for a run.
#[derive(Debug, Clone)]
pub struct GmemStats {
    /// Packets injected into the forward network.
    pub packets: u64,
    /// Queueing delay at the shared per-cluster injection paths.
    pub cluster_path_queued: Cycles,
    /// Total queueing delay in forward-network switch ports.
    pub fwd_queued: Cycles,
    /// Total queueing delay in reverse-network switch ports.
    pub rev_queued: Cycles,
    /// Total queueing delay at memory modules.
    pub module_queued: Cycles,
    /// Per-module request counts (hot-spot detection).
    pub module_requests: Vec<u64>,
    /// Per-module synchronization-request counts.
    pub module_sync_requests: Vec<u64>,
    /// End-to-end round-trip latency distribution.
    pub latency: LatencyHistogram,
    /// Contention-free round-trip for comparison.
    pub min_round_trip: Cycles,
}

impl GmemStats {
    /// Total queueing delay anywhere in the memory system.
    pub fn total_queued(&self) -> Cycles {
        self.cluster_path_queued + self.fwd_queued + self.rev_queued + self.module_queued
    }

    /// Mean queueing delay per packet.
    pub fn mean_queued_per_packet(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.total_queued().0 as f64 / self.packets as f64
        }
    }
}

/// Forward network + 32 memory modules + reverse network.
///
/// Drive it with [`inject`](Self::inject) and route the emitted
/// [`GmemEvent`]s back through [`handle`](Self::handle); when a request's
/// round trip completes, `handle` returns [`GmemOutput::Deliver`].
#[derive(Debug)]
pub struct GlobalMemorySystem {
    cfg: NetConfig,
    forward: DeltaNet,
    reverse: DeltaNet,
    modules: Vec<MemoryModule>,
    /// Shared per-cluster injection paths (round-robin over the ports).
    cluster_paths: Vec<PortBank>,
    cluster_rr: Vec<usize>,
    next_request: u64,
    latency: LatencyHistogram,
}

impl GlobalMemorySystem {
    /// Builds the memory system for `cfg`.
    pub fn new(cfg: NetConfig) -> Self {
        let modules = (0..cfg.modules)
            .map(|_| MemoryModule::new(cfg.module_service, cfg.module_access))
            .collect();
        let n_clusters = (cfg.modules / 8).max(1) as usize;
        GlobalMemorySystem {
            forward: DeltaNet::new(&cfg),
            reverse: DeltaNet::new(&cfg),
            modules,
            cluster_paths: (0..n_clusters)
                .map(|_| PortBank::new(cfg.cluster_inject_ports as usize))
                .collect(),
            cluster_rr: vec![0; n_clusters],
            next_request: 0,
            latency: LatencyHistogram::new(24),
            cfg,
        }
    }

    /// Network configuration in use.
    pub fn config(&self) -> &NetConfig {
        &self.cfg
    }

    /// Allocates a fresh request id.
    pub fn next_request_id(&mut self) -> RequestId {
        let id = RequestId(self.next_request);
        self.next_request += 1;
        id
    }

    /// Injects a request from `ce` for `addr`/`op` at time `now`. Returns
    /// the request id; the packet will surface later as
    /// [`GmemOutput::Deliver`].
    pub fn inject(
        &mut self,
        ce: CeId,
        addr: GlobalAddr,
        op: MemOp,
        now: SimTime,
        out: &mut Outbox<GmemEvent>,
    ) -> RequestId {
        let id = self.next_request_id();
        let req = MemRequest {
            id,
            ce,
            addr,
            module: addr.module(self.cfg.modules),
            op,
            injected_at: now.0,
        };
        // The cluster's shared path to its Global Interfaces serializes
        // the cluster's aggregate issue stream.
        let path_delay = if self.cfg.cluster_inject_ports > 0 {
            let ports = self.cfg.cluster_inject_ports as usize;
            let cluster = {
                // Per-packet path: avoid the division when the cluster id
                // is already in range (always, for machine-built configs).
                let c = (ce.0 / 8) as usize;
                let n = self.cluster_paths.len();
                if c < n {
                    c
                } else {
                    c % n
                }
            };
            let rr = self.cluster_rr[cluster];
            debug_assert!(rr < ports, "round-robin cursor out of range");
            self.cluster_rr[cluster] = if rr + 1 == ports { 0 } else { rr + 1 };
            let through = self.cluster_paths[cluster]
                .get_mut(rr)
                .accept(now, Cycles(1));
            through - now
        } else {
            Cycles::ZERO
        };
        out.emit(path_delay + self.cfg.gi_inject, GmemEvent::FwdStage1(req));
        id
    }

    /// Advances one packet one hop. Returns `Some(Deliver)` when a
    /// response reaches its CE.
    pub fn handle(
        &mut self,
        ev: GmemEvent,
        now: SimTime,
        out: &mut Outbox<GmemEvent>,
    ) -> Option<GmemOutput> {
        match ev {
            GmemEvent::FwdStage1(req) => {
                let arrive = self
                    .forward
                    .transit_stage1(self.fwd_src(req.ce), req.module.0, now);
                out.emit(arrive - now, GmemEvent::FwdStage2(req));
                None
            }
            GmemEvent::FwdStage2(req) => {
                let arrive = self.forward.transit_stage2(req.module.0, now);
                out.emit(arrive - now, GmemEvent::AtModule(req));
                None
            }
            GmemEvent::AtModule(req) => {
                let (ready, value) =
                    self.modules[req.module.0 as usize].serve(req.addr.dword_index(), req.op, now);
                let resp = MemResponse {
                    id: req.id,
                    ce: req.ce,
                    value,
                    module: req.module,
                    injected_at: req.injected_at,
                };
                out.emit(ready - now, GmemEvent::RevStage1(resp));
                None
            }
            GmemEvent::RevStage1(resp) => {
                let arrive = self
                    .reverse
                    .transit_stage1(resp.module.0, self.rev_dst(resp.ce), now);
                out.emit(arrive - now, GmemEvent::RevStage2(resp));
                None
            }
            GmemEvent::RevStage2(resp) => {
                let arrive = self.reverse.transit_stage2(self.rev_dst(resp.ce), now);
                out.emit(arrive - now + self.cfg.delivery, GmemEvent::Delivered(resp));
                None
            }
            GmemEvent::Delivered(resp) => {
                self.latency
                    .record(Cycles(now.0.saturating_sub(resp.injected_at)));
                Some(GmemOutput::Deliver(resp))
            }
        }
    }

    /// Maps a CE to its forward-network input endpoint.
    ///
    /// CE global ids already match the 32-endpoint numbering: each CE has
    /// its own Global Interface into the network (§2).
    fn fwd_src(&self, ce: CeId) -> u16 {
        let n = self.forward.geometry().endpoints();
        // CE ids already fit the endpoint numbering on machine-built
        // configs; the wrap is a correctness fallback, not the hot case,
        // so dodge the per-hop hardware division.
        if ce.0 < n {
            ce.0
        } else {
            ce.0 % n
        }
    }

    /// Maps a CE to its reverse-network output endpoint.
    fn rev_dst(&self, ce: CeId) -> u16 {
        let n = self.reverse.geometry().endpoints();
        if ce.0 < n {
            ce.0
        } else {
            ce.0 % n
        }
    }

    /// Total queueing delay at the shared per-cluster injection paths.
    pub fn cluster_path_queued(&self) -> Cycles {
        self.cluster_paths
            .iter()
            .flat_map(PortBank::iter)
            .map(crate::switch::PortServer::queued)
            .sum()
    }

    /// Contention statistics accumulated so far.
    pub fn stats(&self) -> GmemStats {
        GmemStats {
            packets: self.forward.packets(),
            cluster_path_queued: self.cluster_path_queued(),
            fwd_queued: self.forward.total_queued(),
            rev_queued: self.reverse.total_queued(),
            module_queued: self.modules.iter().map(MemoryModule::queued).sum(),
            module_requests: self.modules.iter().map(MemoryModule::requests).collect(),
            module_sync_requests: self
                .modules
                .iter()
                .map(MemoryModule::sync_requests)
                .collect(),
            latency: self.latency.clone(),
            min_round_trip: self.cfg.min_round_trip(),
        }
    }

    /// Peeks at a stored global-memory word (tests/debugging only).
    pub fn peek(&self, addr: GlobalAddr) -> u64 {
        let module = addr.module(self.cfg.modules);
        self.modules[module.0 as usize].peek(addr.dword_index())
    }

    /// The module an address maps to, under this configuration.
    pub fn module_of(&self, addr: GlobalAddr) -> ModuleId {
        addr.module(self.cfg.modules)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedar_sim::{EventQueue, EventSchedule, SchedKind};

    /// Drives the memory system to quiescence through `q`, returning
    /// delivered responses with their delivery times. Generic over the
    /// scheduler so the same producers run against every implementation.
    fn drive<Q: EventSchedule<GmemEvent>>(
        q: &mut Q,
        sys: &mut GlobalMemorySystem,
        injections: &[(CeId, GlobalAddr, MemOp, SimTime)],
    ) -> Vec<(SimTime, MemResponse)> {
        let mut out = Outbox::new();
        for &(ce, addr, op, at) in injections {
            sys.inject(ce, addr, op, at, &mut out);
            out.flush_into(at, q);
        }
        let mut delivered = Vec::new();
        while let Some((now, ev)) = q.pop() {
            if let Some(GmemOutput::Deliver(resp)) = sys.handle(ev, now, &mut out) {
                delivered.push((now, resp));
            }
            out.flush_into(now, q);
        }
        delivered
    }

    /// Runs the injection schedule under both schedulers, asserts the
    /// delivery streams are identical, and returns one of them (along
    /// with the calendar-driven system's final state in `sys`).
    fn run_to_completion(
        sys: &mut GlobalMemorySystem,
        injections: Vec<(CeId, GlobalAddr, MemOp, SimTime)>,
    ) -> Vec<(SimTime, MemResponse)> {
        let mut heap_sys = GlobalMemorySystem::new(sys.config().clone());
        let mut heap_q = EventQueue::with_kind(SchedKind::Heap);
        let heap_run = drive(&mut heap_q, &mut heap_sys, &injections);

        let mut q = EventQueue::with_kind(SchedKind::Calendar);
        let delivered = drive(&mut q, sys, &injections);

        assert_eq!(delivered.len(), heap_run.len(), "A/B delivery count");
        for (a, b) in delivered.iter().zip(&heap_run) {
            assert_eq!(a.0, b.0, "A/B delivery time");
            assert_eq!(a.1.id, b.1.id, "A/B delivery order");
            assert_eq!(a.1.value, b.1.value, "A/B delivered value");
        }
        delivered
    }

    #[test]
    fn single_request_takes_min_round_trip() {
        let cfg = NetConfig::cedar();
        let min = cfg.min_round_trip();
        let mut sys = GlobalMemorySystem::new(cfg);
        let done = run_to_completion(
            &mut sys,
            vec![(CeId(0), GlobalAddr(0x80), MemOp::Read, Cycles(0))],
        );
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].0, min);
    }

    #[test]
    fn contention_delays_second_request_to_same_module() {
        let cfg = NetConfig::cedar();
        let min = cfg.min_round_trip();
        let mut sys = GlobalMemorySystem::new(cfg);
        // Two CEs on different clusters target the same address at t=0:
        // no shared switch on stage 1, but they serialize at stage 2 and
        // at the module.
        let done = run_to_completion(
            &mut sys,
            vec![
                (CeId(0), GlobalAddr(0x40), MemOp::Read, Cycles(0)),
                (CeId(8), GlobalAddr(0x40), MemOp::Read, Cycles(0)),
            ],
        );
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].0, min);
        assert!(done[1].0 > min, "second request must queue");
        assert!(sys.stats().total_queued() > Cycles::ZERO);
    }

    #[test]
    fn spread_requests_do_not_interfere() {
        let cfg = NetConfig::cedar();
        let min = cfg.min_round_trip();
        let mut sys = GlobalMemorySystem::new(cfg);
        // 4 CEs on 4 different clusters to 4 modules in different groups
        // and different parallel links: fully parallel.
        let done = run_to_completion(
            &mut sys,
            vec![
                (CeId(0), GlobalAddr(0), MemOp::Read, Cycles(0)),
                (CeId(8), GlobalAddr(8 * 9), MemOp::Read, Cycles(0)),
                (CeId(16), GlobalAddr(8 * 18), MemOp::Read, Cycles(0)),
                (CeId(24), GlobalAddr(8 * 27), MemOp::Read, Cycles(0)),
            ],
        );
        assert!(done.iter().all(|(t, _)| *t == min));
    }

    #[test]
    fn tas_round_trip_carries_lock_semantics() {
        let mut sys = GlobalMemorySystem::new(NetConfig::cedar());
        let lock = GlobalAddr(0x1000);
        let done = run_to_completion(
            &mut sys,
            vec![
                (CeId(0), lock, MemOp::TestAndSet, Cycles(0)),
                (CeId(1), lock, MemOp::TestAndSet, Cycles(0)),
            ],
        );
        let values: Vec<u64> = done.iter().map(|(_, r)| r.value).collect();
        assert_eq!(values, vec![0, 1], "exactly one winner");
        assert_eq!(sys.peek(lock), 1);
    }

    #[test]
    fn responses_map_back_to_issuing_ce() {
        let mut sys = GlobalMemorySystem::new(NetConfig::cedar());
        let done = run_to_completion(
            &mut sys,
            vec![
                (CeId(5), GlobalAddr(0x100), MemOp::Read, Cycles(0)),
                (CeId(21), GlobalAddr(0x200), MemOp::Read, Cycles(0)),
            ],
        );
        let ces: Vec<_> = done.iter().map(|(_, r)| r.ce).collect();
        assert!(ces.contains(&CeId(5)) && ces.contains(&CeId(21)));
    }

    #[test]
    fn stats_record_per_module_hot_spot() {
        let mut sys = GlobalMemorySystem::new(NetConfig::cedar());
        let hot = GlobalAddr(0x40);
        let hot_module = sys.module_of(hot).0 as usize;
        let injections = (0..16)
            .map(|c| (CeId(c), hot, MemOp::TestAndSet, Cycles(0)))
            .collect();
        run_to_completion(&mut sys, injections);
        let stats = sys.stats();
        assert_eq!(stats.module_requests[hot_module], 16);
        assert_eq!(stats.module_sync_requests[hot_module], 16);
        assert_eq!(stats.packets, 16);
        assert!(stats.mean_queued_per_packet() > 0.0);
    }
}
