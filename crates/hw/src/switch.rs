//! Output-queued crossbar switch model.
//!
//! Each switch output port is a FCFS server with a configurable per-packet
//! occupancy. Because the simulation processes packet arrivals in global
//! time order, a port can be modelled by a single `free_at` timestamp:
//! a packet arriving at `now` begins transmission at `max(now, free_at)`,
//! occupies the port for `occupancy`, and reaches the next hop after the
//! stage latency. Queueing delay — the contention the paper measures — is
//! `start - now`.

use cedar_sim::{Cycles, SimTime};

/// One FCFS output port.
#[derive(Debug, Clone, Default)]
pub struct PortServer {
    free_at: SimTime,
    packets: u64,
    busy: Cycles,
    queued: Cycles,
}

impl PortServer {
    /// Creates an idle port.
    pub fn new() -> Self {
        PortServer::default()
    }

    /// Accepts a packet arriving at `now`; returns the time it finishes
    /// transiting the port (start of service + `occupancy`).
    ///
    /// # Panics
    ///
    /// Panics if arrivals are presented out of time order **and** that
    /// would move `free_at` backwards (cannot happen when driven from an
    /// [`EventQueue`](cedar_sim::EventQueue)).
    pub fn accept(&mut self, now: SimTime, occupancy: Cycles) -> SimTime {
        let start = now.max(self.free_at);
        self.queued += start - now;
        self.free_at = start + occupancy;
        self.busy += occupancy;
        self.packets += 1;
        self.free_at
    }

    /// Total packets that have crossed this port.
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// Cumulative transmission time (utilization numerator).
    pub fn busy(&self) -> Cycles {
        self.busy
    }

    /// Cumulative queueing delay experienced at this port.
    pub fn queued(&self) -> Cycles {
        self.queued
    }

    /// Time the port next becomes free.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }
}

/// An `radix`-output crossbar switch (inputs need no modelling: an ideal
/// crossbar only conflicts at outputs).
#[derive(Debug, Clone)]
pub struct Crossbar {
    ports: Vec<PortServer>,
    latency: Cycles,
    occupancy: Cycles,
}

impl Crossbar {
    /// Creates a switch with `radix` output ports.
    pub fn new(radix: u16, latency: Cycles, occupancy: Cycles) -> Self {
        Crossbar {
            ports: (0..radix).map(|_| PortServer::new()).collect(),
            latency,
            occupancy,
        }
    }

    /// Routes a packet arriving at `now` to output `port`; returns when it
    /// arrives at the next hop (service start + stage latency).
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn transit(&mut self, port: u16, now: SimTime) -> SimTime {
        let served_by = self.ports[port as usize].accept(now, self.occupancy);
        // The packet leaves the port when transmission completes, then
        // takes the stage latency to reach the next hop.
        served_by + self.latency
    }

    /// Per-port statistics.
    pub fn port(&self, port: u16) -> &PortServer {
        &self.ports[port as usize]
    }

    /// Number of output ports.
    pub fn radix(&self) -> u16 {
        self.ports.len() as u16
    }

    /// Total packets across all ports.
    pub fn total_packets(&self) -> u64 {
        self.ports.iter().map(PortServer::packets).sum()
    }

    /// Total queueing delay across all ports.
    pub fn total_queued(&self) -> Cycles {
        self.ports.iter().map(PortServer::queued).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_packet_takes_occupancy_plus_latency() {
        let mut sw = Crossbar::new(8, Cycles(4), Cycles(1));
        let out = sw.transit(3, Cycles(100));
        assert_eq!(out, Cycles(105)); // 100 + 1 occupancy + 4 latency
        assert_eq!(sw.port(3).queued(), Cycles::ZERO);
    }

    #[test]
    fn back_to_back_packets_queue_at_port() {
        let mut sw = Crossbar::new(8, Cycles(4), Cycles(1));
        let a = sw.transit(0, Cycles(10));
        let b = sw.transit(0, Cycles(10)); // same instant, same port
        assert_eq!(a, Cycles(15));
        assert_eq!(b, Cycles(16)); // one cycle behind
        assert_eq!(sw.port(0).queued(), Cycles(1));
    }

    #[test]
    fn different_ports_do_not_conflict() {
        let mut sw = Crossbar::new(8, Cycles(4), Cycles(1));
        let a = sw.transit(0, Cycles(10));
        let b = sw.transit(1, Cycles(10));
        assert_eq!(a, b);
    }

    #[test]
    fn port_statistics_accumulate() {
        let mut sw = Crossbar::new(4, Cycles(2), Cycles(1));
        for _ in 0..5 {
            sw.transit(2, Cycles(0));
        }
        assert_eq!(sw.port(2).packets(), 5);
        assert_eq!(sw.port(2).busy(), Cycles(5));
        // Packets arrived simultaneously: 0+1+2+3+4 cycles of queueing.
        assert_eq!(sw.port(2).queued(), Cycles(10));
        assert_eq!(sw.total_packets(), 5);
        assert_eq!(sw.total_queued(), Cycles(10));
    }

    #[test]
    fn idle_gap_resets_queueing() {
        let mut sw = Crossbar::new(2, Cycles(1), Cycles(3));
        sw.transit(0, Cycles(0)); // busy until 3
        let out = sw.transit(0, Cycles(50)); // long after
        assert_eq!(out, Cycles(54));
        assert_eq!(sw.port(0).queued(), Cycles::ZERO);
    }
}
