//! Output-queued crossbar switch model.
//!
//! Each switch output port is a FCFS server with a configurable per-packet
//! occupancy. Because the simulation processes packet arrivals in global
//! time order, a port can be modelled by a single `free_at` timestamp:
//! a packet arriving at `now` begins transmission at `max(now, free_at)`,
//! occupies the port for `occupancy`, and reaches the next hop after the
//! stage latency. Queueing delay — the contention the paper measures — is
//! `start - now`.

use cedar_sim::{Cycles, SimTime};

/// One FCFS output port.
#[derive(Debug, Clone, Default)]
pub struct PortServer {
    free_at: SimTime,
    packets: u64,
    busy: Cycles,
    queued: Cycles,
}

impl PortServer {
    /// Creates an idle port.
    pub fn new() -> Self {
        PortServer::default()
    }

    /// Accepts a packet arriving at `now`; returns the time it finishes
    /// transiting the port (start of service + `occupancy`).
    ///
    /// # Panics
    ///
    /// Panics if arrivals are presented out of time order **and** that
    /// would move `free_at` backwards (cannot happen when driven from an
    /// [`EventQueue`](cedar_sim::EventQueue)).
    pub fn accept(&mut self, now: SimTime, occupancy: Cycles) -> SimTime {
        let start = now.max(self.free_at);
        self.queued += start - now;
        self.free_at = start + occupancy;
        self.busy += occupancy;
        self.packets += 1;
        self.free_at
    }

    /// Total packets that have crossed this port.
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// Cumulative transmission time (utilization numerator).
    pub fn busy(&self) -> Cycles {
        self.busy
    }

    /// Cumulative queueing delay experienced at this port.
    pub fn queued(&self) -> Cycles {
        self.queued
    }

    /// Time the port next becomes free.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }
}

/// Ports a [`PortBank`] stores inline before spilling to the heap.
/// Cedar's switches are 8×8 (§2), so the standard machine never spills.
pub const INLINE_PORTS: usize = 8;

/// A fixed-capacity inline bank of FCFS ports.
///
/// The first [`INLINE_PORTS`] ports live directly in the bank (no
/// pointer chase on the packet hot path — the whole bank of
/// `free_at`/counter scalars sits in two cache lines); configurations
/// wider than the inline bound spill the remainder to a vector.
#[derive(Debug, Clone)]
pub struct PortBank {
    inline: [PortServer; INLINE_PORTS],
    inline_len: usize,
    spill: Vec<PortServer>,
}

impl PortBank {
    /// Creates a bank of `ports` idle ports.
    pub fn new(ports: usize) -> Self {
        PortBank {
            inline: Default::default(),
            inline_len: ports.min(INLINE_PORTS),
            spill: vec![PortServer::new(); ports.saturating_sub(INLINE_PORTS)],
        }
    }

    /// Number of ports in the bank.
    pub fn len(&self) -> usize {
        self.inline_len + self.spill.len()
    }

    /// `true` when the bank has no ports.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `i`-th port.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn get(&self, i: usize) -> &PortServer {
        if i < self.inline_len {
            &self.inline[i]
        } else {
            &self.spill[i - self.inline_len]
        }
    }

    /// The `i`-th port, mutably.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn get_mut(&mut self, i: usize) -> &mut PortServer {
        if i < self.inline_len {
            &mut self.inline[i]
        } else {
            &mut self.spill[i - self.inline_len]
        }
    }

    /// Iterates the bank's ports in index order.
    pub fn iter(&self) -> impl Iterator<Item = &PortServer> {
        self.inline[..self.inline_len]
            .iter()
            .chain(self.spill.iter())
    }
}

/// An `radix`-output crossbar switch (inputs need no modelling: an ideal
/// crossbar only conflicts at outputs).
#[derive(Debug, Clone)]
pub struct Crossbar {
    ports: PortBank,
    latency: Cycles,
    occupancy: Cycles,
}

impl Crossbar {
    /// Creates a switch with `radix` output ports.
    pub fn new(radix: u16, latency: Cycles, occupancy: Cycles) -> Self {
        Crossbar {
            ports: PortBank::new(radix as usize),
            latency,
            occupancy,
        }
    }

    /// Routes a packet arriving at `now` to output `port`; returns when it
    /// arrives at the next hop (service start + stage latency).
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn transit(&mut self, port: u16, now: SimTime) -> SimTime {
        let served_by = self
            .ports
            .get_mut(port as usize)
            .accept(now, self.occupancy);
        // The packet leaves the port when transmission completes, then
        // takes the stage latency to reach the next hop.
        served_by + self.latency
    }

    /// Per-port statistics.
    pub fn port(&self, port: u16) -> &PortServer {
        self.ports.get(port as usize)
    }

    /// Number of output ports.
    pub fn radix(&self) -> u16 {
        self.ports.len() as u16
    }

    /// Total packets across all ports.
    pub fn total_packets(&self) -> u64 {
        self.ports.iter().map(PortServer::packets).sum()
    }

    /// Total queueing delay across all ports.
    pub fn total_queued(&self) -> Cycles {
        self.ports.iter().map(PortServer::queued).sum()
    }

    /// Read-only access to the whole port bank (diagnostics).
    pub fn ports(&self) -> &PortBank {
        &self.ports
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_packet_takes_occupancy_plus_latency() {
        let mut sw = Crossbar::new(8, Cycles(4), Cycles(1));
        let out = sw.transit(3, Cycles(100));
        assert_eq!(out, Cycles(105)); // 100 + 1 occupancy + 4 latency
        assert_eq!(sw.port(3).queued(), Cycles::ZERO);
    }

    #[test]
    fn back_to_back_packets_queue_at_port() {
        let mut sw = Crossbar::new(8, Cycles(4), Cycles(1));
        let a = sw.transit(0, Cycles(10));
        let b = sw.transit(0, Cycles(10)); // same instant, same port
        assert_eq!(a, Cycles(15));
        assert_eq!(b, Cycles(16)); // one cycle behind
        assert_eq!(sw.port(0).queued(), Cycles(1));
    }

    #[test]
    fn different_ports_do_not_conflict() {
        let mut sw = Crossbar::new(8, Cycles(4), Cycles(1));
        let a = sw.transit(0, Cycles(10));
        let b = sw.transit(1, Cycles(10));
        assert_eq!(a, b);
    }

    #[test]
    fn port_statistics_accumulate() {
        let mut sw = Crossbar::new(4, Cycles(2), Cycles(1));
        for _ in 0..5 {
            sw.transit(2, Cycles(0));
        }
        assert_eq!(sw.port(2).packets(), 5);
        assert_eq!(sw.port(2).busy(), Cycles(5));
        // Packets arrived simultaneously: 0+1+2+3+4 cycles of queueing.
        assert_eq!(sw.port(2).queued(), Cycles(10));
        assert_eq!(sw.total_packets(), 5);
        assert_eq!(sw.total_queued(), Cycles(10));
    }

    #[test]
    fn wide_crossbar_spills_past_inline_ports() {
        // A 16-output switch exercises the spill half of the bank.
        let mut sw = Crossbar::new(16, Cycles(4), Cycles(1));
        assert_eq!(sw.radix(), 16);
        let a = sw.transit(15, Cycles(10)); // spill port
        let b = sw.transit(15, Cycles(10));
        assert_eq!((a, b), (Cycles(15), Cycles(16)));
        let c = sw.transit(0, Cycles(10)); // inline port, independent
        assert_eq!(c, Cycles(15));
        assert_eq!(sw.port(15).packets(), 2);
        assert_eq!(sw.total_packets(), 3);
        assert_eq!(sw.ports().iter().count(), 16);
    }

    #[test]
    fn idle_gap_resets_queueing() {
        let mut sw = Crossbar::new(2, Cycles(1), Cycles(3));
        sw.transit(0, Cycles(0)); // busy until 3
        let out = sw.transit(0, Cycles(50)); // long after
        assert_eq!(out, Cycles(54));
        assert_eq!(sw.port(0).queued(), Cycles::ZERO);
    }
}
