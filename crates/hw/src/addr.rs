//! Global-memory addressing.
//!
//! The Cedar global memory is double-word (8 byte) interleaved and aligned
//! across 32 independent modules (§2). Address `a` therefore lives in
//! module `(a / 8) mod 32`.

use std::fmt;
use std::ops::Add;

use crate::topology::ModuleId;

/// Bytes per interleaving unit (one double word).
pub const DWORD_BYTES: u64 = 8;

/// A byte address in Cedar shared global memory.
///
/// # Example
///
/// ```
/// use cedar_hw::GlobalAddr;
/// let a = GlobalAddr(0x100);
/// assert_eq!(a.module(32).0, (0x100 / 8) % 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct GlobalAddr(pub u64);

impl GlobalAddr {
    /// The memory module this address interleaves to, for a memory of
    /// `n_modules` modules.
    ///
    /// # Panics
    ///
    /// Panics if `n_modules` is zero.
    pub fn module(self, n_modules: u16) -> ModuleId {
        assert!(n_modules > 0, "memory must have at least one module");
        let dword = self.0 / DWORD_BYTES;
        let n = n_modules as u64;
        // Every real module count is a power of two; mask instead of
        // paying a 64-bit division on each injected request.
        let m = if n.is_power_of_two() {
            dword & (n - 1)
        } else {
            dword % n
        };
        ModuleId(m as u16)
    }

    /// The double-word index of this address (used as the key for lock and
    /// flag words stored in module state).
    pub fn dword_index(self) -> u64 {
        self.0 / DWORD_BYTES
    }

    /// The page this address belongs to, for `page_bytes`-sized pages.
    ///
    /// # Panics
    ///
    /// Panics if `page_bytes` is zero.
    pub fn page(self, page_bytes: u64) -> PageId {
        assert!(page_bytes > 0, "page size must be positive");
        PageId(self.0 / page_bytes)
    }

    /// Address advanced by `bytes`.
    pub fn offset(self, bytes: u64) -> GlobalAddr {
        GlobalAddr(self.0 + bytes)
    }
}

impl Add<u64> for GlobalAddr {
    type Output = GlobalAddr;
    fn add(self, rhs: u64) -> GlobalAddr {
        self.offset(rhs)
    }
}

impl fmt::Display for GlobalAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

/// A virtual-memory page number (address / page size).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageId(pub u64);

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "page{}", self.0)
    }
}

/// Iterator over the distinct pages touched by a strided access of
/// `words` double-words starting at `base` with a stride of
/// `stride_dwords` double-words.
///
/// Allocation-free: addresses are non-decreasing (strides are
/// non-negative), so the page sequence is non-decreasing and dropping
/// adjacent repeats is a full dedup. Called once per vector access on
/// the machine's hot path.
pub fn pages_touched(
    base: GlobalAddr,
    words: u32,
    stride_dwords: u64,
    page_bytes: u64,
) -> impl Iterator<Item = PageId> {
    let mut last: Option<PageId> = None;
    (0..words as u64).filter_map(move |k| {
        let p = base
            .offset(k * stride_dwords * DWORD_BYTES)
            .page(page_bytes);
        if last == Some(p) {
            None
        } else {
            last = Some(p);
            Some(p)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dword_interleaving_matches_paper() {
        // Consecutive double words land in consecutive modules.
        for i in 0..64u64 {
            let a = GlobalAddr(i * DWORD_BYTES);
            assert_eq!(a.module(32).0, (i % 32) as u16);
        }
    }

    #[test]
    fn same_dword_same_module() {
        // All byte addresses within one double word map to one module.
        for b in 0..8u64 {
            assert_eq!(GlobalAddr(0x40 + b).module(32), GlobalAddr(0x40).module(32));
        }
    }

    #[test]
    fn page_mapping() {
        let p = 4096;
        assert_eq!(GlobalAddr(0).page(p), PageId(0));
        assert_eq!(GlobalAddr(4095).page(p), PageId(0));
        assert_eq!(GlobalAddr(4096).page(p), PageId(1));
    }

    #[test]
    fn pages_touched_unit_stride() {
        // 1024 dwords from 0 = 8 KiB = two 4 KiB pages.
        let pages: Vec<PageId> = pages_touched(GlobalAddr(0), 1024, 1, 4096).collect();
        assert_eq!(pages, vec![PageId(0), PageId(1)]);
    }

    #[test]
    fn pages_touched_large_stride_skips_pages() {
        // Stride of 512 dwords = 4 KiB: each word lands on a new page.
        assert_eq!(pages_touched(GlobalAddr(0), 4, 512, 4096).count(), 4);
    }

    #[test]
    fn pages_touched_dedups_revisits() {
        let pages: Vec<PageId> = pages_touched(GlobalAddr(0), 16, 1, 4096).collect();
        assert_eq!(pages, vec![PageId(0)]);
    }

    #[test]
    #[should_panic(expected = "at least one module")]
    fn zero_modules_rejected() {
        GlobalAddr(0).module(0);
    }
}
