//! Closed-form queueing predictions for the memory system.
//!
//! The measurement methodology of the paper is deliberately empirical,
//! but its related work (\[1\], \[3\], \[4\]) builds analytic performance
//! models. This module provides the textbook counterpart of the
//! simulator's FCFS servers — M/D/1 waiting times — so simulated
//! contention can be sanity-checked against theory (see the validation
//! tests and `examples/network_study.rs`).
//!
//! All servers in `cedar-hw` have deterministic service times, so with
//! (approximately) Poisson arrivals the mean wait is the M/D/1 value
//!
//! ```text
//! W = s·ρ / (2(1 − ρ)),   ρ = λ·s
//! ```
//!
//! which is half the M/M/1 wait. The simulator's arrivals are more
//! bursty than Poisson (vector trains), so measured waits should fall
//! between the M/D/1 prediction and a small multiple of it.

use cedar_sim::Cycles;

use crate::config::NetConfig;

/// Utilization `ρ = λ·s` of a deterministic server with arrival rate
/// `lambda` (requests per cycle) and service time `service`.
pub fn utilization(lambda: f64, service: Cycles) -> f64 {
    lambda * service.0 as f64
}

/// Mean M/D/1 waiting time (cycles in queue, excluding service) for a
/// deterministic server.
///
/// Returns `f64::INFINITY` at or beyond saturation.
///
/// # Panics
///
/// Panics if `lambda` is negative.
pub fn md1_wait(lambda: f64, service: Cycles) -> f64 {
    assert!(lambda >= 0.0, "arrival rate must be non-negative");
    let rho = utilization(lambda, service);
    if rho >= 1.0 {
        return f64::INFINITY;
    }
    let s = service.0 as f64;
    s * rho / (2.0 * (1.0 - rho))
}

/// Predicted mean queueing per request at the memory modules for a
/// machine-wide request rate `total_rate` (words per cycle) spread
/// uniformly over the modules.
pub fn module_wait(cfg: &NetConfig, total_rate: f64) -> f64 {
    let per_module = total_rate / cfg.modules as f64;
    md1_wait(per_module, cfg.module_service)
}

/// Predicted mean queueing per request at a cluster's shared injection
/// path, for a per-cluster request rate (words per cycle).
pub fn cluster_path_wait(cfg: &NetConfig, cluster_rate: f64) -> f64 {
    if cfg.cluster_inject_ports == 0 {
        return 0.0;
    }
    // Round-robin over the ports splits the stream evenly.
    let per_port = cluster_rate / cfg.cluster_inject_ports as f64;
    md1_wait(per_port, Cycles(1))
}

/// Predicted mean queueing per request at one forward-network stage, for
/// a machine-wide rate spread uniformly over destinations (each stage
/// has one port per destination-group link; uniform traffic splits the
/// rate over `modules` effective ports).
pub fn stage_wait(cfg: &NetConfig, total_rate: f64) -> f64 {
    let per_port = total_rate / cfg.modules as f64;
    md1_wait(per_port, cfg.port_occupancy)
}

/// End-to-end round-trip prediction for uniform random word traffic at
/// `total_rate` words/cycle machine-wide from `clusters` active clusters:
/// minimum latency plus the queueing at the cluster path, two forward
/// stages and the module (reverse-path queueing mirrors forward).
pub fn round_trip(cfg: &NetConfig, total_rate: f64, clusters: u16) -> f64 {
    let base = cfg.min_round_trip().0 as f64;
    let per_cluster = total_rate / clusters.max(1) as f64;
    base + cluster_path_wait(cfg, per_cluster)
        + 2.0 * stage_wait(cfg, total_rate)
        + module_wait(cfg, total_rate)
        + 2.0 * stage_wait(cfg, total_rate) // reverse stages
}

/// The offered load (words/cycle machine-wide) at which the memory
/// modules saturate for uniform traffic.
pub fn module_saturation_rate(cfg: &NetConfig) -> f64 {
    cfg.modules as f64 / cfg.module_service.0 as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn md1_wait_matches_textbook_values() {
        // ρ = 0.5, s = 4: W = 4 * 0.5 / (2 * 0.5) = 2.
        assert!((md1_wait(0.125, Cycles(4)) - 2.0).abs() < 1e-12);
        // Zero load: no waiting.
        assert_eq!(md1_wait(0.0, Cycles(4)), 0.0);
        // Saturation: infinite.
        assert!(md1_wait(0.25, Cycles(4)).is_infinite());
    }

    #[test]
    fn saturation_rate_for_cedar() {
        // 32 modules at 4 cycles each: 8 words/cycle.
        assert!((module_saturation_rate(&NetConfig::cedar()) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn round_trip_grows_monotonically_with_load() {
        let cfg = NetConfig::cedar();
        let mut last = 0.0;
        for rate in [0.0, 1.0, 2.0, 4.0, 6.0] {
            let rt = round_trip(&cfg, rate, 4);
            assert!(rt > last, "round trip must grow with load");
            last = rt;
        }
        assert!(round_trip(&cfg, 8.0, 4).is_infinite());
    }

    #[test]
    fn cluster_path_dominates_single_cluster_streaming() {
        // One cluster pushing 1.8 words/cycle through a 2-port path:
        // per-port ρ = 0.9 — this wait dwarfs the module wait, which is
        // the analytic form of FLO52's single-cluster contention peak.
        let cfg = NetConfig::cedar();
        let path = cluster_path_wait(&cfg, 1.8);
        let module = module_wait(&cfg, 1.8);
        assert!(path > 4.0 * module, "path {path} vs module {module}");
    }

    /// The validation test: simulate uniform random single-word traffic
    /// and compare the measured mean queueing with the M/D/1 prediction.
    #[test]
    fn simulated_queueing_tracks_the_prediction() {
        use crate::gmem::{GlobalMemorySystem, GmemEvent, GmemOutput};
        use crate::{CeId, GlobalAddr, MemOp};
        use cedar_sim::{EventQueue, Outbox, SplitMix64};

        let cfg = NetConfig::cedar();
        // 16 CEs on 2 clusters, each issuing a word every 8 cycles:
        // total rate = 2 w/cy, per-cluster 1.0 (ports at ρ = 0.5).
        let mut sys = GlobalMemorySystem::new(cfg.clone());
        let mut q: EventQueue<GmemEvent> = EventQueue::new();
        let mut out: Outbox<GmemEvent> = Outbox::new();
        let mut rng = SplitMix64::new(42);
        let n_requests_per_ce = 500u64;
        // Generate every request first, then inject in global time order
        // (PortServer arrivals must be chronological, as in the machine).
        let mut requests: Vec<(u64, u16, u64)> = Vec::new();
        for ce in 0..16u16 {
            let mut t = rng.next_below(8);
            for _ in 0..n_requests_per_ce {
                requests.push((t, ce, rng.next_below(1 << 20) * 8));
                // Exponential-ish gaps around a mean of 8 cycles.
                t += 1 + rng.next_below(15);
            }
        }
        requests.sort_unstable();
        for (t, ce, addr) in requests {
            sys.inject(CeId(ce), GlobalAddr(addr), MemOp::Read, Cycles(t), &mut out);
            out.flush_into(Cycles(t), &mut q);
        }
        let mut delivered = 0u64;
        while let Some((now, ev)) = q.pop() {
            if let Some(GmemOutput::Deliver(_)) = sys.handle(ev, now, &mut out) {
                delivered += 1;
            }
            out.flush_into(now, &mut q);
        }
        assert_eq!(delivered, 16 * n_requests_per_ce);

        let measured = sys.stats().mean_queued_per_packet();
        let rate = 16.0 / 8.0; // words per cycle machine-wide
        let predicted = cluster_path_wait(&cfg, rate / 2.0)
            + 4.0 * stage_wait(&cfg, rate)
            + module_wait(&cfg, rate);
        // Simulated arrivals are burstier than Poisson; accept a band.
        assert!(
            measured > predicted * 0.3 && measured < predicted * 4.0 + 2.0,
            "measured {measured} vs predicted {predicted}"
        );
    }
}
