//! One direction of the interconnection network: two crossbar stages
//! wired as a delta network.

use cedar_sim::{Cycles, SimTime};

use crate::config::NetConfig;
use crate::route::DeltaGeometry;
use crate::switch::Crossbar;

/// A two-stage delta network in one direction (forward: CEs → memory;
/// reverse: memory → CEs).
///
/// `transit_stage1` / `transit_stage2` return the *absolute* time the
/// packet arrives at the next hop, accounting for queueing at the chosen
/// switch output port.
#[derive(Debug, Clone)]
pub struct DeltaNet {
    geometry: DeltaGeometry,
    stage1: Vec<Crossbar>,
    stage2: Vec<Crossbar>,
}

impl DeltaNet {
    /// Builds the network for `cfg`'s geometry and latencies.
    pub fn new(cfg: &NetConfig) -> Self {
        let geometry = DeltaGeometry::new(cfg.modules, cfg.radix);
        let make = || {
            (0..geometry.switches_per_stage())
                .map(|_| Crossbar::new(cfg.radix, cfg.switch_latency, cfg.port_occupancy))
                .collect::<Vec<_>>()
        };
        DeltaNet {
            geometry,
            stage1: make(),
            stage2: make(),
        }
    }

    /// Routing geometry.
    pub fn geometry(&self) -> DeltaGeometry {
        self.geometry
    }

    /// Packet from endpoint `src` bound for endpoint `dst` arrives at its
    /// stage-1 switch at `now`; returns arrival time at the stage-2 switch.
    pub fn transit_stage1(&mut self, src: u16, dst: u16, now: SimTime) -> SimTime {
        let sw = self.geometry.stage1_switch(src) as usize;
        let port = self.geometry.stage1_port(dst);
        self.stage1[sw].transit(port, now)
    }

    /// Packet bound for endpoint `dst` arrives at its stage-2 switch at
    /// `now`; returns arrival time at the destination endpoint.
    pub fn transit_stage2(&mut self, dst: u16, now: SimTime) -> SimTime {
        let sw = self.geometry.stage2_switch(dst) as usize;
        let port = self.geometry.stage2_port(dst);
        self.stage2[sw].transit(port, now)
    }

    /// Total packets that crossed stage 1 (== packets injected).
    pub fn packets(&self) -> u64 {
        self.stage1.iter().map(Crossbar::total_packets).sum()
    }

    /// Total queueing delay accumulated in both stages — the direct
    /// measure of network contention.
    pub fn total_queued(&self) -> Cycles {
        self.stage1
            .iter()
            .chain(self.stage2.iter())
            .map(Crossbar::total_queued)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> DeltaNet {
        DeltaNet::new(&NetConfig::cedar())
    }

    #[test]
    fn uncontended_two_stage_transit() {
        let mut n = net();
        let cfg = NetConfig::cedar();
        let at_stage2 = n.transit_stage1(0, 17, Cycles(0));
        // occupancy 1 + latency 4
        assert_eq!(at_stage2, cfg.port_occupancy + cfg.switch_latency);
        let at_dst = n.transit_stage2(17, at_stage2);
        assert_eq!(at_dst, at_stage2 + cfg.port_occupancy + cfg.switch_latency);
        assert_eq!(n.total_queued(), Cycles::ZERO);
    }

    #[test]
    fn hot_destination_queues() {
        let mut n = net();
        // 8 CEs of cluster 0 all target module 5 simultaneously: they share
        // one stage-1 switch and one output port, so they serialize.
        let arrivals: Vec<_> = (0..8)
            .map(|src| n.transit_stage1(src, 5, Cycles(0)))
            .collect();
        for w in arrivals.windows(2) {
            assert_eq!(w[1].0 - w[0].0, 1, "packets serialize one per cycle");
        }
        assert!(n.total_queued() > Cycles::ZERO);
    }

    #[test]
    fn distinct_destinations_from_distinct_sources_do_not_queue() {
        let mut n = net();
        // CEs in different clusters (different stage-1 switches) to
        // different modules in different groups: fully conflict-free.
        let a = n.transit_stage1(0, 0, Cycles(0));
        let b = n.transit_stage1(8, 9, Cycles(0));
        assert_eq!(a, b);
        assert_eq!(n.total_queued(), Cycles::ZERO);
    }

    #[test]
    fn packet_count_tracks_stage1_crossings() {
        let mut n = net();
        for src in 0..4 {
            n.transit_stage1(src, src, Cycles(0));
        }
        assert_eq!(n.packets(), 4);
    }

    #[test]
    fn unit_stride_vector_spreads_over_parallel_links() {
        let mut n = net();
        // One CE issuing words to modules 0..8 pipelined at 1/cycle never
        // waits: consecutive modules alternate stage-1 links and spread
        // across stage-2 switches.
        for k in 0..8u16 {
            let t = n.transit_stage1(0, k, Cycles(k as u64));
            assert_eq!(t.0, k as u64 + 5, "word {k} should not queue");
        }
        assert_eq!(n.total_queued(), Cycles::ZERO);
    }
}
