//! Machine topology: clusters, computational elements, memory modules,
//! and the standard Cedar configurations the paper measures.

use std::fmt;

/// Identifies one of the (up to four) Cedar clusters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClusterId(pub u8);

impl fmt::Display for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cluster{}", self.0)
    }
}

/// Identifies a computational element, globally numbered `0..32`.
///
/// CEs are numbered cluster-major: CE `c` belongs to cluster `c / 8` and
/// is CE `c % 8` within it (for the full machine shape; smaller
/// configurations use a prefix of the numbering).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CeId(pub u16);

/// CEs per cluster on the real Cedar.
pub const CES_PER_CLUSTER: u16 = 8;

impl CeId {
    /// The cluster this CE belongs to (full-machine numbering).
    pub fn cluster(self) -> ClusterId {
        ClusterId((self.0 / CES_PER_CLUSTER) as u8)
    }

    /// Index of this CE within its cluster, `0..8`.
    pub fn index_in_cluster(self) -> u16 {
        self.0 % CES_PER_CLUSTER
    }

    /// Constructs a CE id from a cluster and an intra-cluster index.
    pub fn from_parts(cluster: ClusterId, index: u16) -> CeId {
        CeId(cluster.0 as u16 * CES_PER_CLUSTER + index)
    }
}

impl fmt::Display for CeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ce{}", self.0)
    }
}

/// Identifies one of the 32 independent global-memory modules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ModuleId(pub u16);

impl fmt::Display for ModuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mod{}", self.0)
    }
}

/// The Cedar configurations measured in the paper (Table 1 and onwards).
///
/// All configurations share the *same* interconnection network and global
/// memory (and therefore the same minimum memory latency) — §3.2 notes
/// this is what lets the methodology isolate the contention factor.
///
/// # Example
///
/// ```
/// use cedar_hw::Configuration;
/// let c = Configuration::P16;
/// assert_eq!(c.clusters(), 2);
/// assert_eq!(c.total_ces(), 16);
/// assert_eq!(c.label(), "16 proc");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Configuration {
    /// 1 processor (one CE on one cluster).
    P1,
    /// 4 processors, all from the same cluster (Table 1 footnote).
    P4,
    /// 8 processors = one full cluster.
    P8,
    /// 16 processors = 2 clusters.
    P16,
    /// 32 processors = the full 4-cluster Cedar.
    P32,
}

impl Configuration {
    /// All five configurations in the order the paper's tables use.
    pub const ALL: [Configuration; 5] = [
        Configuration::P1,
        Configuration::P4,
        Configuration::P8,
        Configuration::P16,
        Configuration::P32,
    ];

    /// Number of clusters employed.
    pub fn clusters(self) -> u8 {
        match self {
            Configuration::P1 | Configuration::P4 | Configuration::P8 => 1,
            Configuration::P16 => 2,
            Configuration::P32 => 4,
        }
    }

    /// Number of CEs active on each employed cluster.
    pub fn ces_per_cluster(self) -> u16 {
        match self {
            Configuration::P1 => 1,
            Configuration::P4 => 4,
            Configuration::P8 | Configuration::P16 | Configuration::P32 => 8,
        }
    }

    /// Total processors in the configuration.
    pub fn total_ces(self) -> u16 {
        self.clusters() as u16 * self.ces_per_cluster()
    }

    /// Column label as printed in the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            Configuration::P1 => "1 proc",
            Configuration::P4 => "4 proc",
            Configuration::P8 => "8 proc",
            Configuration::P16 => "16 proc",
            Configuration::P32 => "32 proc",
        }
    }

    /// Iterator over the active CE ids of this configuration.
    pub fn ces(self) -> impl Iterator<Item = CeId> {
        let per = self.ces_per_cluster();
        (0..self.clusters() as u16)
            .flat_map(move |cl| (0..per).map(move |i| CeId::from_parts(ClusterId(cl as u8), i)))
    }

    /// Iterator over the active cluster ids.
    pub fn cluster_ids(self) -> impl Iterator<Item = ClusterId> {
        (0..self.clusters()).map(ClusterId)
    }
}

impl fmt::Display for Configuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ce_cluster_mapping() {
        assert_eq!(CeId(0).cluster(), ClusterId(0));
        assert_eq!(CeId(7).cluster(), ClusterId(0));
        assert_eq!(CeId(8).cluster(), ClusterId(1));
        assert_eq!(CeId(31).cluster(), ClusterId(3));
        assert_eq!(CeId(13).index_in_cluster(), 5);
    }

    #[test]
    fn ce_from_parts_round_trips() {
        for c in 0..4u8 {
            for i in 0..8u16 {
                let ce = CeId::from_parts(ClusterId(c), i);
                assert_eq!(ce.cluster(), ClusterId(c));
                assert_eq!(ce.index_in_cluster(), i);
            }
        }
    }

    #[test]
    fn configurations_match_paper() {
        assert_eq!(Configuration::P1.total_ces(), 1);
        assert_eq!(Configuration::P4.total_ces(), 4);
        assert_eq!(Configuration::P8.total_ces(), 8);
        assert_eq!(Configuration::P16.total_ces(), 16);
        assert_eq!(Configuration::P32.total_ces(), 32);
        // 4-processor configuration uses a single cluster (Table 1 note).
        assert_eq!(Configuration::P4.clusters(), 1);
    }

    #[test]
    fn ces_iterator_counts_and_lands_on_right_clusters() {
        let v: Vec<_> = Configuration::P16.ces().collect();
        assert_eq!(v.len(), 16);
        assert_eq!(v[0], CeId(0));
        assert_eq!(v[8], CeId(8)); // second cluster starts at global CE 8
        assert!(v.iter().all(|ce| ce.cluster().0 < 2));
    }

    #[test]
    fn p4_uses_single_cluster_ces() {
        let v: Vec<_> = Configuration::P4.ces().collect();
        assert_eq!(v, vec![CeId(0), CeId(1), CeId(2), CeId(3)]);
    }

    #[test]
    fn labels() {
        assert_eq!(Configuration::P32.to_string(), "32 proc");
    }
}
