//! Computational-element activity engine.
//!
//! A CE executes one **activity** at a time on behalf of its cluster
//! task's runtime-library state machine: a span of computation, a vector
//! burst to global memory, or a single synchronization word access. The
//! engine tracks outstanding memory responses and uses a generation
//! counter so that stale completion events (from activities that were
//! extended by OS service time) are recognized and dropped — the standard
//! versioned-event technique for preemption in DES.

use cedar_sim::{Cycles, SimTime};

use crate::addr::GlobalAddr;
use crate::packet::MemOp;
use crate::topology::CeId;
use crate::vector::VectorAccess;

/// Something a CE can be told to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activity {
    /// Pure computation (local/cache work folded in) for a duration.
    Compute(Cycles),
    /// A pipelined vector burst to global memory.
    Vector(VectorAccess),
    /// A single word access — lock, flag or counter traffic.
    Word {
        /// Target address.
        addr: GlobalAddr,
        /// Operation to perform.
        op: MemOp,
    },
}

impl Activity {
    /// Number of memory responses this activity must collect.
    pub fn responses_expected(&self) -> u32 {
        match self {
            Activity::Compute(_) => 0,
            Activity::Vector(v) => v.words,
            Activity::Word { .. } => 1,
        }
    }
}

/// Result of completing an activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActivityOutcome {
    /// Value returned by the *last* memory response (the interesting one
    /// for `Word` activities: TAS old value, FetchAdd old value, read
    /// value). Zero for `Compute`.
    pub value: u64,
    /// When the activity finished.
    pub finished_at: SimTime,
}

/// Execution state of one CE.
#[derive(Debug, Clone)]
pub struct CeEngine {
    id: CeId,
    generation: u64,
    outstanding: u32,
    last_value: u64,
    busy: Cycles,
    gmem_words: u64,
    activities: u64,
    active_since: Option<SimTime>,
}

impl CeEngine {
    /// Creates an idle CE.
    pub fn new(id: CeId) -> Self {
        CeEngine {
            id,
            generation: 0,
            outstanding: 0,
            last_value: 0,
            busy: Cycles::ZERO,
            gmem_words: 0,
            activities: 0,
            active_since: None,
        }
    }

    /// This CE's id.
    pub fn id(&self) -> CeId {
        self.id
    }

    /// Begins an activity at `now`; returns the generation token that a
    /// matching completion event must carry.
    ///
    /// # Panics
    ///
    /// Panics if an activity is already in flight.
    pub fn begin(&mut self, activity: &Activity, now: SimTime) -> u64 {
        assert!(
            self.active_since.is_none(),
            "{}: begin() while an activity is in flight",
            self.id
        );
        self.generation += 1;
        self.outstanding = activity.responses_expected();
        self.gmem_words += self.outstanding as u64;
        self.activities += 1;
        self.active_since = Some(now);
        self.generation
    }

    /// Records one memory response; returns `true` when it was the last
    /// outstanding response (activity complete).
    ///
    /// # Panics
    ///
    /// Panics if no responses are outstanding.
    pub fn on_response(&mut self, value: u64) -> bool {
        assert!(self.outstanding > 0, "{}: unexpected response", self.id);
        self.outstanding -= 1;
        self.last_value = value;
        self.outstanding == 0
    }

    /// `true` if `generation` matches the current activity (stale
    /// completion events fail this check and must be dropped).
    pub fn is_current(&self, generation: u64) -> bool {
        generation == self.generation && self.active_since.is_some()
    }

    /// Marks the current activity finished at `now`, accumulating busy
    /// time, and returns its outcome.
    ///
    /// # Panics
    ///
    /// Panics if no activity is in flight.
    pub fn finish(&mut self, now: SimTime) -> ActivityOutcome {
        let started = self
            .active_since
            .take()
            .unwrap_or_else(|| panic!("{}: finish() with no activity", self.id));
        self.busy += now.saturating_sub(started);
        ActivityOutcome {
            value: self.last_value,
            finished_at: now,
        }
    }

    /// Invalidates the in-flight completion event (used when OS service
    /// extends the activity) and returns the fresh generation to stamp on
    /// the re-scheduled completion.
    pub fn extend(&mut self) -> u64 {
        self.generation += 1;
        self.generation
    }

    /// `true` while an activity is in flight.
    pub fn is_active(&self) -> bool {
        self.active_since.is_some()
    }

    /// Responses still outstanding for the current activity.
    pub fn outstanding(&self) -> u32 {
        self.outstanding
    }

    /// Cumulative busy time across finished activities.
    pub fn busy(&self) -> Cycles {
        self.busy
    }

    /// Global-memory words requested so far.
    pub fn gmem_words(&self) -> u64 {
        self.gmem_words
    }

    /// Activities begun so far.
    pub fn activities(&self) -> u64 {
        self.activities
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_activity_lifecycle() {
        let mut ce = CeEngine::new(CeId(3));
        let g = ce.begin(&Activity::Compute(Cycles(100)), Cycles(10));
        assert!(ce.is_current(g));
        assert!(ce.is_active());
        let out = ce.finish(Cycles(110));
        assert_eq!(out.finished_at, Cycles(110));
        assert_eq!(ce.busy(), Cycles(100));
        assert!(!ce.is_active());
        assert!(!ce.is_current(g), "finished activity is no longer current");
    }

    #[test]
    fn vector_activity_waits_for_all_responses() {
        let mut ce = CeEngine::new(CeId(0));
        let v = Activity::Vector(VectorAccess::read(GlobalAddr(0), 3, 1));
        ce.begin(&v, Cycles(0));
        assert_eq!(ce.outstanding(), 3);
        assert!(!ce.on_response(0));
        assert!(!ce.on_response(0));
        assert!(ce.on_response(7), "last response completes");
        let out = ce.finish(Cycles(40));
        assert_eq!(out.value, 7, "value of last response is surfaced");
        assert_eq!(ce.gmem_words(), 3);
    }

    #[test]
    fn word_activity_carries_lock_value() {
        let mut ce = CeEngine::new(CeId(1));
        ce.begin(
            &Activity::Word {
                addr: GlobalAddr(0x40),
                op: MemOp::TestAndSet,
            },
            Cycles(0),
        );
        assert!(ce.on_response(1)); // lock was held
        assert_eq!(ce.finish(Cycles(25)).value, 1);
    }

    #[test]
    fn extend_invalidates_previous_generation() {
        let mut ce = CeEngine::new(CeId(2));
        let g1 = ce.begin(&Activity::Compute(Cycles(50)), Cycles(0));
        let g2 = ce.extend();
        assert!(!ce.is_current(g1), "stale completion must be dropped");
        assert!(ce.is_current(g2));
    }

    #[test]
    #[should_panic(expected = "in flight")]
    fn double_begin_panics() {
        let mut ce = CeEngine::new(CeId(0));
        ce.begin(&Activity::Compute(Cycles(1)), Cycles(0));
        ce.begin(&Activity::Compute(Cycles(1)), Cycles(0));
    }

    #[test]
    #[should_panic(expected = "unexpected response")]
    fn response_without_outstanding_panics() {
        let mut ce = CeEngine::new(CeId(0));
        ce.begin(&Activity::Compute(Cycles(1)), Cycles(0));
        ce.on_response(0);
    }

    #[test]
    fn busy_time_accumulates_across_activities() {
        let mut ce = CeEngine::new(CeId(0));
        ce.begin(&Activity::Compute(Cycles(10)), Cycles(0));
        ce.finish(Cycles(10));
        ce.begin(&Activity::Compute(Cycles(5)), Cycles(20));
        ce.finish(Cycles(25));
        assert_eq!(ce.busy(), Cycles(15));
        assert_eq!(ce.activities(), 2);
    }
}
