//! Strided vector accesses to global memory.
//!
//! The Cedar CEs are pipelined vector processors (§2); parallel loop
//! bodies mostly operate on vector sections of global arrays, so "there
//! could be multiple vector requests issued to the global memory from
//! different processors at the same time leading to substantial global
//! memory and network activity, and hence contention" (§7). A
//! [`VectorAccess`] describes one such burst; the CE injects its words
//! pipelined at one per cycle.

use crate::addr::{GlobalAddr, DWORD_BYTES};
use crate::packet::MemOp;

/// One strided burst of double-word accesses.
///
/// # Example
///
/// ```
/// use cedar_hw::{VectorAccess, GlobalAddr, MemOp};
///
/// let v = VectorAccess::read(GlobalAddr(0), 4, 2);
/// let addrs: Vec<u64> = v.addresses().map(|a| a.0).collect();
/// assert_eq!(addrs, vec![0, 16, 32, 48]); // stride of 2 dwords
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VectorAccess {
    /// First element address.
    pub base: GlobalAddr,
    /// Number of double words.
    pub words: u32,
    /// Stride between elements, in double words.
    pub stride_dwords: u64,
    /// Operation applied to every element.
    pub op: MemOp,
}

impl VectorAccess {
    /// A strided vector load.
    pub fn read(base: GlobalAddr, words: u32, stride_dwords: u64) -> Self {
        VectorAccess {
            base,
            words,
            stride_dwords,
            op: MemOp::Read,
        }
    }

    /// A strided vector store.
    pub fn write(base: GlobalAddr, words: u32, stride_dwords: u64) -> Self {
        VectorAccess {
            base,
            words,
            stride_dwords,
            op: MemOp::Write(0),
        }
    }

    /// Iterator over the element addresses, in issue order.
    pub fn addresses(&self) -> impl Iterator<Item = GlobalAddr> + '_ {
        let base = self.base;
        let stride = self.stride_dwords;
        (0..self.words as u64).map(move |k| base.offset(k * stride * DWORD_BYTES))
    }

    /// Bytes spanned from the first to one past the last element.
    pub fn span_bytes(&self) -> u64 {
        if self.words == 0 {
            0
        } else {
            ((self.words as u64 - 1) * self.stride_dwords + 1) * DWORD_BYTES
        }
    }

    /// Number of *distinct* memory modules touched, for an `n_modules`
    /// interleaved memory — unit-stride vectors sweep all modules, while
    /// power-of-two strides can concentrate on few (classic interleaving
    /// pathology).
    pub fn modules_touched(&self, n_modules: u16) -> usize {
        let mut seen = vec![false; n_modules as usize];
        let mut count = 0;
        for a in self.addresses() {
            let m = a.module(n_modules).0 as usize;
            if !seen[m] {
                seen[m] = true;
                count += 1;
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_stride_sweeps_all_modules() {
        let v = VectorAccess::read(GlobalAddr(0), 64, 1);
        assert_eq!(v.modules_touched(32), 32);
    }

    #[test]
    fn stride_32_hits_one_module() {
        // Stride equal to the module count: every element lands on the
        // same module — the worst case for an interleaved memory.
        let v = VectorAccess::read(GlobalAddr(0), 16, 32);
        assert_eq!(v.modules_touched(32), 1);
    }

    #[test]
    fn stride_2_hits_half_the_modules() {
        let v = VectorAccess::read(GlobalAddr(0), 64, 2);
        assert_eq!(v.modules_touched(32), 16);
    }

    #[test]
    fn addresses_follow_stride() {
        let v = VectorAccess::write(GlobalAddr(0x100), 3, 4);
        let a: Vec<u64> = v.addresses().map(|x| x.0).collect();
        assert_eq!(a, vec![0x100, 0x120, 0x140]);
    }

    #[test]
    fn span_bytes() {
        assert_eq!(VectorAccess::read(GlobalAddr(0), 0, 1).span_bytes(), 0);
        assert_eq!(VectorAccess::read(GlobalAddr(0), 1, 7).span_bytes(), 8);
        assert_eq!(VectorAccess::read(GlobalAddr(0), 4, 2).span_bytes(), 7 * 8);
    }
}
