//! Cluster shared data cache model.
//!
//! Each Cedar cluster has a 4-way interleaved shared data cache (§2).
//! Because the cache is *shared* by the cluster's CEs, Cedar sidesteps
//! false sharing and coherence traffic; what remains are capacity and
//! conflict misses, which the paper explicitly does **not** characterize
//! (§3.2). The model is therefore used for workload realism (folding an
//! effective miss penalty into local work) and for the ablation examples,
//! not for the headline tables.

use cedar_sim::Cycles;

use crate::addr::GlobalAddr;

/// Configuration of a set-associative cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of sets (power of two).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
    /// Miss penalty charged to local work.
    pub miss_penalty: Cycles,
}

impl CacheConfig {
    /// A cluster cache roughly shaped like the Alliant FX/8's 128 KB
    /// shared data cache: 512 sets × 4 ways × 64 B lines.
    pub fn cedar_cluster() -> Self {
        CacheConfig {
            sets: 512,
            ways: 4,
            line_bytes: 64,
            miss_penalty: Cycles(10),
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.sets as u64 * self.ways as u64 * self.line_bytes
    }
}

/// A set-associative LRU cache.
///
/// # Example
///
/// ```
/// use cedar_hw::cache::{Cache, CacheConfig};
/// use cedar_hw::GlobalAddr;
///
/// let mut c = Cache::new(CacheConfig::cedar_cluster());
/// assert!(!c.access(GlobalAddr(0x1000))); // cold miss
/// assert!(c.access(GlobalAddr(0x1008)));  // same line: hit
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    /// `tags[set]` holds up to `ways` tags in LRU order (front = MRU).
    tags: Vec<Vec<u64>>,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Creates an empty (all-invalid) cache.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `line_bytes` are not powers of two, or if
    /// `ways` is zero.
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(cfg.sets.is_power_of_two(), "sets must be a power of two");
        assert!(
            cfg.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(cfg.ways > 0, "cache must have at least one way");
        Cache {
            tags: vec![Vec::with_capacity(cfg.ways); cfg.sets],
            cfg,
            hits: 0,
            misses: 0,
        }
    }

    /// Performs one access; returns `true` on hit, updating LRU state and
    /// filling the line on miss.
    pub fn access(&mut self, addr: GlobalAddr) -> bool {
        let line = addr.0 / self.cfg.line_bytes;
        let set = (line as usize) & (self.cfg.sets - 1);
        let tag = line >> self.cfg.sets.trailing_zeros();
        let ways = &mut self.tags[set];
        if let Some(pos) = ways.iter().position(|&t| t == tag) {
            let t = ways.remove(pos);
            ways.insert(0, t);
            self.hits += 1;
            true
        } else {
            if ways.len() == self.cfg.ways {
                ways.pop();
            }
            ways.insert(0, tag);
            self.misses += 1;
            false
        }
    }

    /// Total hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit ratio in `[0, 1]`; zero before any access.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Miss-penalty cycles accumulated so far.
    pub fn penalty(&self) -> Cycles {
        self.cfg.miss_penalty * self.misses
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        Cache::new(CacheConfig {
            sets: 4,
            ways: 2,
            line_bytes: 64,
            miss_penalty: Cycles(10),
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small();
        assert!(!c.access(GlobalAddr(0)));
        assert!(c.access(GlobalAddr(0)));
        assert!(c.access(GlobalAddr(63)));
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = small();
        // Three lines mapping to set 0: 0, 4*64=256, 8*64=512.
        c.access(GlobalAddr(0));
        c.access(GlobalAddr(256));
        c.access(GlobalAddr(512)); // evicts line 0 (LRU)
        assert!(!c.access(GlobalAddr(0)), "line 0 was evicted");
        assert!(c.access(GlobalAddr(512)));
    }

    #[test]
    fn access_refreshes_lru_order() {
        let mut c = small();
        c.access(GlobalAddr(0));
        c.access(GlobalAddr(256));
        c.access(GlobalAddr(0)); // refresh line 0 to MRU
        c.access(GlobalAddr(512)); // should evict 256, not 0
        assert!(c.access(GlobalAddr(0)));
        assert!(!c.access(GlobalAddr(256)));
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = small();
        for s in 0..4u64 {
            c.access(GlobalAddr(s * 64));
        }
        for s in 0..4u64 {
            assert!(c.access(GlobalAddr(s * 64)));
        }
    }

    #[test]
    fn penalty_and_ratio() {
        let mut c = small();
        c.access(GlobalAddr(0));
        c.access(GlobalAddr(0));
        assert_eq!(c.penalty(), Cycles(10));
        assert!((c.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cedar_capacity_is_128_kib() {
        assert_eq!(CacheConfig::cedar_cluster().capacity(), 128 * 1024);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_sets() {
        Cache::new(CacheConfig {
            sets: 3,
            ways: 1,
            line_bytes: 64,
            miss_penalty: Cycles(1),
        });
    }
}
