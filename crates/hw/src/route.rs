//! Routing for the two-stage shuffle-exchange (delta) network.
//!
//! The Cedar network connects 32 endpoints to 32 endpoints through two
//! stages of 8×8 crossbars (4 switches per stage). Each stage-1 switch has
//! `radix / groups` parallel links to every stage-2 switch (2 on the real
//! geometry); the link is chosen by destination parity, so consecutive
//! interleaved modules alternate links — the shuffle-exchange wiring.
//!
//! The same geometry is used in both directions: the forward network
//! routes CE→module, the reverse network routes module→CE.

/// Geometry of one direction of a two-stage delta network.
///
/// # Example
///
/// ```
/// use cedar_hw::route::DeltaGeometry;
/// let g = DeltaGeometry::new(32, 8); // the Cedar geometry
/// assert_eq!(g.switches_per_stage(), 4);
/// assert_eq!(g.parallel_links(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaGeometry {
    endpoints: u16,
    radix: u16,
    /// `endpoints / radix`, precomputed: switches per stage.
    groups: u16,
    /// `radix / groups`, precomputed: parallel links per switch pair.
    links: u16,
    /// `log2(radix)` when the radix is a power of two, else [`NO_SHIFT`].
    /// Routing runs once per packet per stage, so the port math must not
    /// pay for hardware division on the geometries the machine actually
    /// builds (all power-of-two); non-power-of-two geometries take the
    /// exact div/mod slow path.
    radix_shift: u8,
    /// `log2(links)` when the link count is a power of two, else [`NO_SHIFT`].
    links_shift: u8,
}

/// Sentinel for "not a power of two — use real division".
const NO_SHIFT: u8 = u8::MAX;

fn shift_of(n: u16) -> u8 {
    if n.is_power_of_two() {
        n.trailing_zeros() as u8
    } else {
        NO_SHIFT
    }
}

impl DeltaGeometry {
    /// Creates the geometry for `endpoints` sources/destinations and
    /// `radix`-port switches.
    ///
    /// # Panics
    ///
    /// Panics unless `radix` divides `endpoints`, two stages suffice
    /// (`radix² ≥ endpoints`), and the groups divide the radix (so the
    /// parallel-link count is integral).
    pub fn new(endpoints: u16, radix: u16) -> Self {
        assert!(radix > 0 && endpoints > 0, "degenerate geometry");
        assert!(
            endpoints.is_multiple_of(radix),
            "radix {radix} must divide endpoint count {endpoints}"
        );
        assert!(
            (radix as u32) * (radix as u32) >= endpoints as u32,
            "two stages of {radix}x{radix} switches cannot span {endpoints} endpoints"
        );
        let groups = endpoints / radix;
        assert!(
            radix.is_multiple_of(groups),
            "groups {groups} must divide radix {radix} for uniform parallel links"
        );
        let links = radix / groups;
        DeltaGeometry {
            endpoints,
            radix,
            groups,
            links,
            radix_shift: shift_of(radix),
            links_shift: shift_of(links),
        }
    }

    /// The Cedar geometry: 32 endpoints, 8×8 switches.
    pub fn cedar() -> Self {
        DeltaGeometry::new(32, 8)
    }

    /// Endpoints per side.
    pub fn endpoints(&self) -> u16 {
        self.endpoints
    }

    /// Switch radix.
    pub fn radix(&self) -> u16 {
        self.radix
    }

    /// Switches in each stage.
    pub fn switches_per_stage(&self) -> u16 {
        self.groups
    }

    /// Parallel links between each (stage-1, stage-2) switch pair.
    pub fn parallel_links(&self) -> u16 {
        self.links
    }

    /// `x / radix`, taking the shift fast path on power-of-two radices.
    #[inline]
    fn div_radix(&self, x: u16) -> u16 {
        if self.radix_shift != NO_SHIFT {
            x >> self.radix_shift
        } else {
            x / self.radix
        }
    }

    /// `x % radix`, taking the mask fast path on power-of-two radices.
    #[inline]
    fn mod_radix(&self, x: u16) -> u16 {
        if self.radix_shift != NO_SHIFT {
            x & (self.radix - 1)
        } else {
            x % self.radix
        }
    }

    /// `x % links`, taking the mask fast path on power-of-two link counts.
    #[inline]
    fn mod_links(&self, x: u16) -> u16 {
        if self.links_shift != NO_SHIFT {
            x & (self.links - 1)
        } else {
            x % self.links
        }
    }

    /// The stage-1 switch that input endpoint `src` attaches to.
    pub fn stage1_switch(&self, src: u16) -> u16 {
        debug_assert!(src < self.endpoints);
        self.div_radix(src)
    }

    /// The stage-1 output port used to reach output endpoint `dst`
    /// (selects among the parallel links by destination parity).
    pub fn stage1_port(&self, dst: u16) -> u16 {
        debug_assert!(dst < self.endpoints);
        let target = self.div_radix(dst);
        let link = self.mod_links(dst);
        target + self.groups * link
    }

    /// The stage-2 switch serving output endpoint `dst`.
    pub fn stage2_switch(&self, dst: u16) -> u16 {
        debug_assert!(dst < self.endpoints);
        self.div_radix(dst)
    }

    /// The stage-2 output port delivering to endpoint `dst`.
    pub fn stage2_port(&self, dst: u16) -> u16 {
        debug_assert!(dst < self.endpoints);
        self.mod_radix(dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cedar_geometry_constants() {
        let g = DeltaGeometry::cedar();
        assert_eq!(g.endpoints(), 32);
        assert_eq!(g.radix(), 8);
        assert_eq!(g.switches_per_stage(), 4);
        assert_eq!(g.parallel_links(), 2);
    }

    #[test]
    fn every_pair_has_a_route() {
        let g = DeltaGeometry::cedar();
        for src in 0..32 {
            for dst in 0..32 {
                let s1 = g.stage1_switch(src);
                let p1 = g.stage1_port(dst);
                let s2 = g.stage2_switch(dst);
                let p2 = g.stage2_port(dst);
                assert!(s1 < 4 && s2 < 4);
                assert!(p1 < 8 && p2 < 8);
                // The stage-1 port must actually lead to the stage-2
                // switch serving dst: ports are grouped mod `groups`.
                assert_eq!(p1 % g.switches_per_stage(), s2);
            }
        }
    }

    #[test]
    fn stage2_output_is_unique_per_destination() {
        let g = DeltaGeometry::cedar();
        // Within one stage-2 switch, the 8 destinations use 8 distinct ports.
        for s2 in 0..4u16 {
            let mut seen = [false; 8];
            for dst in (s2 * 8)..(s2 * 8 + 8) {
                assert_eq!(g.stage2_switch(dst), s2);
                let p = g.stage2_port(dst) as usize;
                assert!(!seen[p], "port reused");
                seen[p] = true;
            }
        }
    }

    #[test]
    fn consecutive_destinations_alternate_parallel_links() {
        let g = DeltaGeometry::cedar();
        // Destinations 0 and 1 are on the same stage-2 switch but must use
        // different stage-1 ports (different parallel links) so that
        // unit-stride vectors spread over both links.
        assert_ne!(g.stage1_port(0), g.stage1_port(1));
        assert_eq!(g.stage1_port(0), g.stage1_port(2));
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn rejects_non_dividing_radix() {
        DeltaGeometry::new(30, 8);
    }

    #[test]
    #[should_panic(expected = "cannot span")]
    fn rejects_too_many_endpoints() {
        DeltaGeometry::new(128, 8);
    }

    #[test]
    fn smaller_geometries_work() {
        let g = DeltaGeometry::new(16, 4);
        assert_eq!(g.switches_per_stage(), 4);
        assert_eq!(g.parallel_links(), 1);
        for dst in 0..16 {
            assert_eq!(g.stage1_port(dst), g.stage2_switch(dst));
        }
    }
}
