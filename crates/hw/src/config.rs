//! Hardware configuration and latency parameters.

use cedar_sim::Cycles;

use crate::topology::Configuration;

/// Interconnection network and global-memory timing parameters.
///
/// Defaults model the Cedar network described in §2 and [9, 10]: two
/// stages of 8×8 crossbars in each direction, 32 double-word interleaved
/// memory modules with a 4-cycle module busy time (§7: "the global memory
/// takes 4 processor clock cycles to process a request").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetConfig {
    /// Number of independent global-memory modules.
    pub modules: u16,
    /// Crossbar radix (ports per switch).
    pub radix: u16,
    /// Switch traversal latency per stage, excluding queueing.
    pub switch_latency: Cycles,
    /// Output-port occupancy per packet (inverse bandwidth; 1 packet per
    /// cycle per port at the default).
    pub port_occupancy: Cycles,
    /// Module busy time per request (serialization at the module).
    pub module_service: Cycles,
    /// DRAM access component of module latency (pipelined; does not
    /// occupy the module for followers).
    pub module_access: Cycles,
    /// Global Interface injection latency (CE → first stage).
    pub gi_inject: Cycles,
    /// Per-cluster injection ports: the modified Alliant FX/8's CEs share
    /// a cluster-level path to their Global Interfaces, which bounds a
    /// cluster's aggregate global-memory issue bandwidth to this many
    /// words per cycle. Zero disables the shared-path model. This is why
    /// FLO52's contention overhead peaks on the *single-cluster*
    /// configurations (Table 4: 27% at 8 processors).
    pub cluster_inject_ports: u16,
    /// Delivery latency (last reverse stage → CE).
    pub delivery: Cycles,
}

impl NetConfig {
    /// The Cedar network as built (32 modules, 8×8 switches, two stages).
    pub fn cedar() -> Self {
        NetConfig {
            modules: 32,
            radix: 8,
            switch_latency: Cycles(4),
            port_occupancy: Cycles(1),
            module_service: Cycles(4),
            module_access: Cycles(8),
            gi_inject: Cycles(2),
            delivery: Cycles(2),
            cluster_inject_ports: 2, // 2 words/cycle per cluster
        }
    }

    /// Minimum (contention-free) round-trip latency for one word:
    /// cluster path + inject + 4 switch traversals (each paying port
    /// occupancy plus the stage latency) + module service + access +
    /// delivery.
    pub fn min_round_trip(&self) -> Cycles {
        let path = if self.cluster_inject_ports > 0 {
            Cycles(1)
        } else {
            Cycles::ZERO
        };
        path + self.gi_inject
            + (self.switch_latency + self.port_occupancy) * 4
            + self.module_service
            + self.module_access
            + self.delivery
    }

    /// Number of switches per stage needed to connect `inputs` endpoints
    /// with this radix.
    pub fn switches_per_stage(&self, inputs: u16) -> u16 {
        inputs.div_ceil(self.radix)
    }

    /// This network with degraded hardware: switch-stage latency
    /// stretched by `switch_pct`% and memory-module service/access
    /// latency by `module_pct`% (fault-injection experiments; 0/0 is
    /// the identity). Port occupancy and injection paths are untouched,
    /// so the degradation models slow silicon, not a narrower network.
    pub fn slowed(&self, switch_pct: u32, module_pct: u32) -> NetConfig {
        let stretch = |c: Cycles, pct: u32| Cycles(c.0 + c.0 * pct as u64 / 100);
        NetConfig {
            switch_latency: stretch(self.switch_latency, switch_pct),
            module_service: stretch(self.module_service, module_pct),
            module_access: stretch(self.module_access, module_pct),
            ..self.clone()
        }
    }
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig::cedar()
    }
}

/// Cluster-local hardware timing parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Concurrency-bus cost to dispatch a `cdoall` across the cluster's
    /// CEs (the bus makes this fast; §2).
    pub cbus_dispatch: Cycles,
    /// Concurrency-bus cost for an intra-cluster barrier once every CE
    /// has arrived.
    pub cbus_barrier: Cycles,
    /// Cache/local-memory effective access time folded into compute
    /// costs (documented knob; local work is charged as compute cycles).
    pub local_access: Cycles,
}

impl ClusterConfig {
    /// Alliant FX/8-class defaults.
    pub fn cedar() -> Self {
        ClusterConfig {
            cbus_dispatch: Cycles(6),
            cbus_barrier: Cycles(8),
            local_access: Cycles(1),
        }
    }
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig::cedar()
    }
}

/// Complete hardware description for one simulated machine instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HwConfig {
    /// Which processor configuration is active (1/4/8/16/32).
    pub configuration: Configuration,
    /// Network and memory parameters (identical across configurations —
    /// the paper's methodology depends on this, §3.2).
    pub net: NetConfig,
    /// Cluster-local parameters.
    pub cluster: ClusterConfig,
}

impl HwConfig {
    /// The machine the paper measured, at a given processor count.
    pub fn cedar(configuration: Configuration) -> Self {
        HwConfig {
            configuration,
            net: NetConfig::cedar(),
            cluster: ClusterConfig::cedar(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_round_trip_is_sum_of_stages() {
        let n = NetConfig::cedar();
        assert_eq!(n.min_round_trip(), Cycles(1 + 2 + (4 + 1) * 4 + 4 + 8 + 2));
    }

    #[test]
    fn cedar_has_32_modules_and_radix_8() {
        let n = NetConfig::cedar();
        assert_eq!(n.modules, 32);
        assert_eq!(n.radix, 8);
        assert_eq!(n.switches_per_stage(32), 4);
    }

    #[test]
    fn all_configurations_share_network_parameters() {
        let p1 = HwConfig::cedar(Configuration::P1);
        let p32 = HwConfig::cedar(Configuration::P32);
        assert_eq!(p1.net, p32.net);
    }

    #[test]
    fn slowed_zero_is_identity_and_stretches_scale() {
        let n = NetConfig::cedar();
        assert_eq!(n.slowed(0, 0), n);
        let s = n.slowed(50, 100);
        assert_eq!(s.switch_latency, Cycles(6)); // 4 * 1.5
        assert_eq!(s.module_service, Cycles(8)); // 4 * 2
        assert_eq!(s.module_access, Cycles(16)); // 8 * 2
        assert_eq!(s.port_occupancy, n.port_occupancy);
        assert!(s.min_round_trip() > n.min_round_trip());
    }

    #[test]
    fn switches_per_stage_rounds_up() {
        let n = NetConfig::cedar();
        assert_eq!(n.switches_per_stage(9), 2);
        assert_eq!(n.switches_per_stage(8), 1);
    }
}
