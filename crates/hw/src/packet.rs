//! Network packets: global-memory requests and responses.

use std::fmt;

use crate::addr::GlobalAddr;
use crate::topology::{CeId, ModuleId};

/// Uniquely identifies an in-flight memory request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(pub u64);

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req{}", self.0)
    }
}

/// The operation a request performs at the memory module.
///
/// `TestAndSet`, `Unset` and `FetchAdd` are the synchronization primitives
/// the Cedar Fortran runtime builds its loop-dispatch locks, activity
/// flags and barrier counters from; they execute atomically at the module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemOp {
    /// Read a double word; the response carries the stored value.
    Read,
    /// Write a double word.
    Write(u64),
    /// Atomically read the old value and store 1 (lock acquire attempt;
    /// old value 0 means the lock was obtained).
    TestAndSet,
    /// Store 0 (lock release).
    Unset,
    /// Atomically add a delta and return the *old* value (used for barrier
    /// counters and self-scheduled iteration indices).
    FetchAdd(i64),
}

impl MemOp {
    /// `true` for operations that modify module state.
    pub fn is_write(self) -> bool {
        !matches!(self, MemOp::Read)
    }

    /// `true` for the synchronization primitives (they address hot lock
    /// words, which matters for hot-spot statistics).
    pub fn is_sync(self) -> bool {
        matches!(self, MemOp::TestAndSet | MemOp::Unset | MemOp::FetchAdd(_))
    }
}

/// A request packet travelling CE → forward network → memory module.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRequest {
    /// In-flight id, echoed in the response.
    pub id: RequestId,
    /// Issuing computational element.
    pub ce: CeId,
    /// Target address.
    pub addr: GlobalAddr,
    /// Destination module (precomputed from `addr` at injection).
    pub module: ModuleId,
    /// Operation to perform at the module.
    pub op: MemOp,
    /// Injection timestamp in cycles (for end-to-end latency stats).
    pub injected_at: u64,
}

/// A response packet travelling memory module → reverse network → CE.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemResponse {
    /// Id of the request this answers.
    pub id: RequestId,
    /// CE to deliver to.
    pub ce: CeId,
    /// Value returned by the module (old value for `TestAndSet` /
    /// `FetchAdd`, stored value for `Read`, undefined-but-zero for pure
    /// writes).
    pub value: u64,
    /// Module that served the request.
    pub module: ModuleId,
    /// Injection timestamp copied from the request.
    pub injected_at: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_classification() {
        assert!(!MemOp::Read.is_write());
        assert!(MemOp::Write(3).is_write());
        assert!(MemOp::TestAndSet.is_write());
        assert!(MemOp::TestAndSet.is_sync());
        assert!(MemOp::FetchAdd(1).is_sync());
        assert!(!MemOp::Read.is_sync());
        assert!(!MemOp::Write(0).is_sync());
        assert!(MemOp::Unset.is_sync());
    }
}
