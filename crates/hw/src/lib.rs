//! # cedar-hw — Cedar hardware models
//!
//! Event-driven models of the Cedar multiprocessor's hardware (§2 of the
//! paper):
//!
//! * 1–4 **clusters** (modified Alliant FX/8s) of 8 pipelined
//!   computational elements (CEs) each, with a shared data cache and a
//!   **concurrency control bus** for fast intra-cluster loop dispatch and
//!   synchronization ([`cbus`], [`cache`], [`ce`]);
//! * a 64 MB **global memory** of 32 independent, double-word interleaved
//!   modules ([`module`], [`gmem`]);
//! * a **two-stage shuffle-exchange network** of 8×8 crossbar switches,
//!   one network for the CE→memory path and another for the return path
//!   ([`switch`], [`route`], [`net`]).
//!
//! Contention — the paper's third overhead source — emerges here: every
//! global-memory word travels as a packet through switch output ports and
//! memory modules modelled as FCFS servers, so simultaneous vector
//! requests from many CEs queue exactly where they did on the real
//! machine.
//!
//! Components follow the `cedar-sim` outbox pattern: they are plain
//! structs with `handle(event, now, &mut Outbox)` methods, composed into a
//! full machine by `cedar-core`.
//!
//! ## Example: one word's round trip
//!
//! ```
//! use cedar_hw::{CeId, GlobalAddr, GlobalMemorySystem, GmemEvent, GmemOutput, MemOp, NetConfig};
//! use cedar_sim::{Cycles, EventQueue, Outbox};
//!
//! let cfg = NetConfig::cedar();
//! let min_rtt = cfg.min_round_trip();
//! let mut sys = GlobalMemorySystem::new(cfg);
//! let mut q: EventQueue<GmemEvent> = EventQueue::new();
//! let mut out: Outbox<GmemEvent> = Outbox::new();
//! sys.inject(CeId(0), GlobalAddr(0x100), MemOp::Read, Cycles(0), &mut out);
//! out.flush_into(Cycles(0), &mut q);
//! let mut delivered_at = None;
//! while let Some((now, ev)) = q.pop() {
//!     if let Some(GmemOutput::Deliver(_)) = sys.handle(ev, now, &mut out) {
//!         delivered_at = Some(now);
//!     }
//!     out.flush_into(now, &mut q);
//! }
//! assert_eq!(delivered_at, Some(min_rtt)); // uncontended = minimum latency
//! ```

pub mod addr;
pub mod analytic;
pub mod cache;
pub mod cbus;
pub mod ce;
pub mod config;
pub mod gmem;
pub mod module;
pub mod net;
pub mod packet;
pub mod route;
pub mod switch;
pub mod topology;
pub mod vector;

pub use addr::GlobalAddr;
pub use cbus::ConcurrencyBus;
pub use ce::{Activity, ActivityOutcome, CeEngine};
pub use config::{HwConfig, NetConfig};
pub use gmem::{GlobalMemorySystem, GmemEvent, GmemOutput};
pub use packet::{MemOp, MemRequest, MemResponse, RequestId};
pub use topology::{CeId, ClusterId, Configuration, ModuleId};
pub use vector::VectorAccess;
