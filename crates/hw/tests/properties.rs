//! Property tests of the hardware models against simple reference
//! semantics.

use cedar_hw::module::MemoryModule;
use cedar_hw::switch::PortServer;
use cedar_hw::{GlobalAddr, MemOp, VectorAccess};
use cedar_sim::Cycles;
use proptest::prelude::*;
use std::collections::HashMap;

/// A memory-module op for generation.
#[derive(Debug, Clone)]
enum Op {
    Read(u64),
    Write(u64, u64),
    Tas(u64),
    Unset(u64),
    FetchAdd(u64, i64),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..8).prop_map(Op::Read),
        (0u64..8, 0u64..100).prop_map(|(a, v)| Op::Write(a, v)),
        (0u64..8).prop_map(Op::Tas),
        (0u64..8).prop_map(Op::Unset),
        (0u64..8, -3i64..4).prop_map(|(a, d)| Op::FetchAdd(a, d)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn module_matches_reference_semantics(ops in prop::collection::vec(arb_op(), 0..200)) {
        let mut module = MemoryModule::new(Cycles(4), Cycles(8));
        let mut reference: HashMap<u64, u64> = HashMap::new();
        let mut now = Cycles(0);
        for op in ops {
            now += Cycles(1);
            let (expected, memop, dword) = match op {
                Op::Read(a) => (*reference.get(&a).unwrap_or(&0), MemOp::Read, a),
                Op::Write(a, v) => {
                    reference.insert(a, v);
                    (0, MemOp::Write(v), a)
                }
                Op::Tas(a) => {
                    let old = *reference.get(&a).unwrap_or(&0);
                    reference.insert(a, 1);
                    (old, MemOp::TestAndSet, a)
                }
                Op::Unset(a) => {
                    reference.insert(a, 0);
                    (0, MemOp::Unset, a)
                }
                Op::FetchAdd(a, d) => {
                    let old = *reference.get(&a).unwrap_or(&0);
                    reference.insert(a, old.wrapping_add_signed(d));
                    (old, MemOp::FetchAdd(d), a)
                }
            };
            let (_, value) = module.serve(dword, memop, now);
            prop_assert_eq!(value, expected);
        }
        for (a, v) in reference {
            prop_assert_eq!(module.peek(a), v);
        }
    }

    #[test]
    fn module_service_is_fcfs_and_work_conserving(
        arrivals in prop::collection::vec(0u64..1000, 1..100)
    ) {
        let mut sorted = arrivals.clone();
        sorted.sort_unstable();
        let mut module = MemoryModule::new(Cycles(4), Cycles(8));
        let mut last_ready = Cycles(0);
        for (i, &t) in sorted.iter().enumerate() {
            let (ready, _) = module.serve(i as u64, MemOp::Read, Cycles(t));
            // Responses come back in arrival order...
            prop_assert!(ready >= last_ready);
            // ...never earlier than the uncontended latency...
            prop_assert!(ready >= Cycles(t + 12));
            // ...and the server is work-conserving: busy time equals
            // requests * service.
            last_ready = ready;
        }
        prop_assert_eq!(module.busy(), Cycles(4 * sorted.len() as u64));
    }

    #[test]
    fn port_server_departures_are_spaced_by_occupancy(
        arrivals in prop::collection::vec(0u64..500, 1..100)
    ) {
        let mut sorted = arrivals.clone();
        sorted.sort_unstable();
        let mut port = PortServer::new();
        let mut last = Cycles(0);
        for &t in &sorted {
            let through = port.accept(Cycles(t), Cycles(1));
            prop_assert!(through >= last + Cycles(1) || last == Cycles(0));
            prop_assert!(through >= Cycles(t + 1));
            last = through;
        }
        prop_assert_eq!(port.packets(), sorted.len() as u64);
        prop_assert_eq!(port.busy(), Cycles(sorted.len() as u64));
    }

    #[test]
    fn vector_addresses_stay_in_span(
        words in 1u32..64,
        stride in 1u64..16,
        base in 0u64..4096,
    ) {
        let v = VectorAccess::read(GlobalAddr(base * 8), words, stride);
        let addrs: Vec<_> = v.addresses().collect();
        prop_assert_eq!(addrs.len(), words as usize);
        prop_assert_eq!(addrs[0], v.base);
        let last = addrs.last().unwrap();
        prop_assert_eq!(last.0 - v.base.0 + 8, v.span_bytes());
        // Distinct modules never exceed the word count or module count.
        let touched = v.modules_touched(32);
        prop_assert!(touched <= 32);
        prop_assert!(touched <= words as usize);
    }
}
