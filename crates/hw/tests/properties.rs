//! Property tests of the hardware models against simple reference
//! semantics, driven by the in-repo `SplitMix64` generator with fixed
//! seeds (reproducible, zero external crates).

use cedar_hw::module::MemoryModule;
use cedar_hw::switch::PortServer;
use cedar_hw::{GlobalAddr, MemOp, VectorAccess};
use cedar_sim::{Cycles, SplitMix64};
use std::collections::HashMap;

/// A memory-module op for generation.
#[derive(Debug, Clone)]
enum Op {
    Read(u64),
    Write(u64, u64),
    Tas(u64),
    Unset(u64),
    FetchAdd(u64, i64),
}

fn arb_op(rng: &mut SplitMix64) -> Op {
    match rng.next_below(5) {
        0 => Op::Read(rng.next_below(8)),
        1 => Op::Write(rng.next_below(8), rng.next_below(100)),
        2 => Op::Tas(rng.next_below(8)),
        3 => Op::Unset(rng.next_below(8)),
        _ => Op::FetchAdd(rng.next_below(8), rng.next_range(0, 6) as i64 - 3),
    }
}

/// A random sorted arrival schedule of `1..max_len` times below `bound`.
fn arb_arrivals(rng: &mut SplitMix64, max_len: u64, bound: u64) -> Vec<u64> {
    let len = rng.next_range(1, max_len - 1) as usize;
    let mut arrivals: Vec<u64> = (0..len).map(|_| rng.next_below(bound)).collect();
    arrivals.sort_unstable();
    arrivals
}

#[test]
fn module_matches_reference_semantics() {
    for seed in 0..64u64 {
        let mut rng = SplitMix64::new(0xA000 + seed);
        let ops: Vec<Op> = (0..rng.next_below(200)).map(|_| arb_op(&mut rng)).collect();
        let mut module = MemoryModule::new(Cycles(4), Cycles(8));
        let mut reference: HashMap<u64, u64> = HashMap::new();
        let mut now = Cycles(0);
        for op in ops {
            now += Cycles(1);
            let (expected, memop, dword) = match op {
                Op::Read(a) => (*reference.get(&a).unwrap_or(&0), MemOp::Read, a),
                Op::Write(a, v) => {
                    reference.insert(a, v);
                    (0, MemOp::Write(v), a)
                }
                Op::Tas(a) => {
                    let old = *reference.get(&a).unwrap_or(&0);
                    reference.insert(a, 1);
                    (old, MemOp::TestAndSet, a)
                }
                Op::Unset(a) => {
                    reference.insert(a, 0);
                    (0, MemOp::Unset, a)
                }
                Op::FetchAdd(a, d) => {
                    let old = *reference.get(&a).unwrap_or(&0);
                    reference.insert(a, old.wrapping_add_signed(d));
                    (old, MemOp::FetchAdd(d), a)
                }
            };
            let (_, value) = module.serve(dword, memop, now);
            assert_eq!(value, expected, "seed {seed}");
        }
        for (a, v) in reference {
            assert_eq!(module.peek(a), v, "seed {seed} addr {a}");
        }
    }
}

#[test]
fn module_service_is_fcfs_and_work_conserving() {
    for seed in 0..64u64 {
        let mut rng = SplitMix64::new(0xB000 + seed);
        let sorted = arb_arrivals(&mut rng, 100, 1000);
        let mut module = MemoryModule::new(Cycles(4), Cycles(8));
        let mut last_ready = Cycles(0);
        for (i, &t) in sorted.iter().enumerate() {
            let (ready, _) = module.serve(i as u64, MemOp::Read, Cycles(t));
            // Responses come back in arrival order...
            assert!(ready >= last_ready, "seed {seed}");
            // ...never earlier than the uncontended latency...
            assert!(ready >= Cycles(t + 12), "seed {seed}");
            // ...and the server is work-conserving: busy time equals
            // requests * service.
            last_ready = ready;
        }
        assert_eq!(
            module.busy(),
            Cycles(4 * sorted.len() as u64),
            "seed {seed}"
        );
    }
}

#[test]
fn port_server_departures_are_spaced_by_occupancy() {
    for seed in 0..64u64 {
        let mut rng = SplitMix64::new(0xC000 + seed);
        let sorted = arb_arrivals(&mut rng, 100, 500);
        let mut port = PortServer::new();
        let mut last = Cycles(0);
        for &t in &sorted {
            let through = port.accept(Cycles(t), Cycles(1));
            assert!(
                through >= last + Cycles(1) || last == Cycles(0),
                "seed {seed}"
            );
            assert!(through >= Cycles(t + 1), "seed {seed}");
            last = through;
        }
        assert_eq!(port.packets(), sorted.len() as u64, "seed {seed}");
        assert_eq!(port.busy(), Cycles(sorted.len() as u64), "seed {seed}");
    }
}

#[test]
fn vector_addresses_stay_in_span() {
    for seed in 0..64u64 {
        let mut rng = SplitMix64::new(0xD000 + seed);
        let words = rng.next_range(1, 63) as u32;
        let stride = rng.next_range(1, 15);
        let base = rng.next_below(4096);
        let v = VectorAccess::read(GlobalAddr(base * 8), words, stride);
        let addrs: Vec<_> = v.addresses().collect();
        assert_eq!(addrs.len(), words as usize, "seed {seed}");
        assert_eq!(addrs[0], v.base, "seed {seed}");
        let last = addrs.last().unwrap();
        assert_eq!(last.0 - v.base.0 + 8, v.span_bytes(), "seed {seed}");
        // Distinct modules never exceed the word count or module count.
        let touched = v.modules_touched(32);
        assert!(touched <= 32, "seed {seed}");
        assert!(touched <= words as usize, "seed {seed}");
    }
}
