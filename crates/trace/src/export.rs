//! Off-loading the trace buffer.
//!
//! The real `cedarhpm` off-loads its trace buffers "to a remote Sun
//! Workstation at the end of the program execution for analysis" (§4).
//! This module is the equivalent: a stable, line-oriented CSV encoding of
//! the trace, plus a parser for round-tripping archived traces back into
//! the analysis tooling.

use cedar_hw::CeId;
use cedar_sim::HpmTicks;

use crate::event::{TraceEvent, TraceEventId};

/// All event ids, for encoding.
const IDS: [(TraceEventId, &str); 21] = [
    (TraceEventId::MainEncounterLoop, "main_encounter_loop"),
    (TraceEventId::HelperJoinLoop, "helper_join_loop"),
    (TraceEventId::PickIterEnter, "pick_iter_enter"),
    (TraceEventId::PickIterExit, "pick_iter_exit"),
    (TraceEventId::IterStart, "iter_start"),
    (TraceEventId::IterEnd, "iter_end"),
    (TraceEventId::FinishBarrierEnter, "finish_barrier_enter"),
    (TraceEventId::FinishBarrierExit, "finish_barrier_exit"),
    (TraceEventId::WaitForWorkEnter, "wait_for_work_enter"),
    (TraceEventId::WaitForWorkExit, "wait_for_work_exit"),
    (TraceEventId::LoopSetupEnter, "loop_setup_enter"),
    (TraceEventId::LoopSetupExit, "loop_setup_exit"),
    (TraceEventId::TaskDetach, "task_detach"),
    (TraceEventId::ClusterLoopStart, "cluster_loop_start"),
    (TraceEventId::ClusterLoopEnd, "cluster_loop_end"),
    (TraceEventId::SerialStart, "serial_start"),
    (TraceEventId::SerialEnd, "serial_end"),
    (TraceEventId::OsServiceEnter, "os_service_enter"),
    (TraceEventId::OsServiceExit, "os_service_exit"),
    (TraceEventId::ContextSwitch, "context_switch"),
    (TraceEventId::ProgramStart, "program_start"),
];

/// Name of an event id in the CSV encoding.
pub fn id_name(id: TraceEventId) -> &'static str {
    if id == TraceEventId::ProgramEnd {
        return "program_end";
    }
    IDS.iter()
        .find(|(i, _)| *i == id)
        .map(|(_, n)| *n)
        .expect("every id is named")
}

/// Parses an event name back to its id.
pub fn id_from_name(name: &str) -> Option<TraceEventId> {
    if name == "program_end" {
        return Some(TraceEventId::ProgramEnd);
    }
    IDS.iter().find(|(_, n)| *n == name).map(|(i, _)| *i)
}

/// Encodes a trace as CSV (`event,hpm_ticks,ce,arg`).
pub fn to_csv(events: &[TraceEvent]) -> String {
    let mut out = String::from("event,hpm_ticks,ce,arg\n");
    for e in events {
        out.push_str(&format!(
            "{},{},{},{}\n",
            id_name(e.id),
            e.at.0,
            e.ce.0,
            e.arg
        ));
    }
    out
}

/// Error from parsing an archived trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line the parse failed on.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseTraceError {}

/// Parses a CSV trace produced by [`to_csv`].
///
/// # Errors
///
/// Returns [`ParseTraceError`] for an unknown event name or malformed
/// field.
pub fn from_csv(csv: &str) -> Result<Vec<TraceEvent>, ParseTraceError> {
    let mut out = Vec::new();
    for (i, line) in csv.lines().enumerate() {
        if i == 0 || line.is_empty() {
            continue; // header / trailing newline
        }
        let err = |message: String| ParseTraceError {
            line: i + 1,
            message,
        };
        let mut parts = line.split(',');
        let name = parts.next().ok_or_else(|| err("missing event".into()))?;
        let id = id_from_name(name).ok_or_else(|| err(format!("unknown event {name:?}")))?;
        let at: u64 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| err("bad timestamp".into()))?;
        let ce: u16 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| err("bad ce".into()))?;
        let arg: u32 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| err("bad arg".into()))?;
        out.push(TraceEvent {
            id,
            at: HpmTicks(at),
            ce: CeId(ce),
            arg,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedar_sim::Cycles;

    fn sample() -> Vec<TraceEvent> {
        vec![
            TraceEvent {
                id: TraceEventId::ProgramStart,
                at: Cycles(0).to_hpm_ticks(),
                ce: CeId(0),
                arg: 0,
            },
            TraceEvent {
                id: TraceEventId::IterStart,
                at: Cycles(42).to_hpm_ticks(),
                ce: CeId(17),
                arg: 2,
            },
            TraceEvent {
                id: TraceEventId::ProgramEnd,
                at: Cycles(100).to_hpm_ticks(),
                ce: CeId(0),
                arg: 0,
            },
        ]
    }

    #[test]
    fn csv_round_trips() {
        let events = sample();
        let csv = to_csv(&events);
        let parsed = from_csv(&csv).unwrap();
        assert_eq!(parsed, events);
    }

    #[test]
    fn every_event_id_has_a_unique_name() {
        let mut names: Vec<&str> = IDS.iter().map(|(_, n)| *n).collect();
        names.push("program_end");
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
        // And they all round trip.
        for name in names {
            let id = id_from_name(name).unwrap();
            assert_eq!(id_name(id), name);
        }
    }

    #[test]
    fn parse_reports_bad_lines() {
        let err = from_csv("event,hpm_ticks,ce,arg\nnope,1,2,3\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("unknown event"));
        let err = from_csv("event,hpm_ticks,ce,arg\niter_start,xx,2,3\n").unwrap_err();
        assert!(err.message.contains("bad timestamp"));
    }

    #[test]
    fn header_and_blank_lines_are_skipped() {
        let parsed = from_csv("event,hpm_ticks,ce,arg\n").unwrap();
        assert!(parsed.is_empty());
    }
}
