//! The `statfx` software concurrency monitor.
//!
//! "The average concurrency represents the average number of active
//! processors at any given time during the program execution. ... This
//! monitor measures the concurrency on each cluster; for the
//! multi-cluster Cedar configurations, the values provided in the table
//! are the sum of the concurrency values on the different clusters"
//! (§3.1).

use cedar_hw::{CeId, ClusterId};
use cedar_sim::stats::TimeWeighted;
use cedar_sim::SimTime;

/// Tracks the number of busy CEs per cluster as a time-weighted signal.
#[derive(Debug, Clone)]
pub struct Statfx {
    per_cluster: Vec<TimeWeighted>,
    busy_count: Vec<u16>,
    ce_busy: Vec<bool>,
}

impl Statfx {
    /// Creates a monitor for `clusters` clusters of up to
    /// `ces_per_cluster` CEs, all initially idle.
    pub fn new(clusters: u8, ces_per_cluster: u16) -> Self {
        Statfx {
            per_cluster: (0..clusters)
                .map(|_| TimeWeighted::new(SimTime::ZERO, 0.0))
                .collect(),
            busy_count: vec![0; clusters as usize],
            ce_busy: vec![false; clusters as usize * ces_per_cluster as usize],
        }
    }

    fn ce_index(&self, ce: CeId) -> usize {
        let per = self.ce_busy.len() / self.per_cluster.len();
        ce.cluster().0 as usize * per + ce.index_in_cluster() as usize
    }

    /// Marks `ce` busy at `now` (idempotent).
    pub fn mark_busy(&mut self, ce: CeId, now: SimTime) {
        let idx = self.ce_index(ce);
        if !self.ce_busy[idx] {
            self.ce_busy[idx] = true;
            let cl = ce.cluster().0 as usize;
            self.busy_count[cl] += 1;
            self.per_cluster[cl].update(now, self.busy_count[cl] as f64);
        }
    }

    /// Marks `ce` idle at `now` (idempotent).
    pub fn mark_idle(&mut self, ce: CeId, now: SimTime) {
        let idx = self.ce_index(ce);
        if self.ce_busy[idx] {
            self.ce_busy[idx] = false;
            let cl = ce.cluster().0 as usize;
            self.busy_count[cl] -= 1;
            self.per_cluster[cl].update(now, self.busy_count[cl] as f64);
        }
    }

    /// Average concurrency on one cluster over `[0, end)`.
    pub fn cluster_average(&self, cluster: ClusterId, end: SimTime) -> f64 {
        self.per_cluster[cluster.0 as usize].average(end)
    }

    /// Machine-wide average concurrency: the sum over clusters, as the
    /// paper reports for multi-cluster configurations.
    pub fn total_average(&self, end: SimTime) -> f64 {
        (0..self.per_cluster.len())
            .map(|c| self.cluster_average(ClusterId(c as u8), end))
            .sum()
    }

    /// CEs currently busy on `cluster`.
    pub fn busy_now(&self, cluster: ClusterId) -> u16 {
        self.busy_count[cluster.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedar_sim::Cycles;

    #[test]
    fn single_ce_half_busy_averages_half() {
        let mut s = Statfx::new(1, 8);
        s.mark_busy(CeId(0), Cycles(0));
        s.mark_idle(CeId(0), Cycles(50));
        assert!((s.cluster_average(ClusterId(0), Cycles(100)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn eight_ces_fully_busy_average_eight() {
        let mut s = Statfx::new(1, 8);
        for i in 0..8 {
            s.mark_busy(CeId(i), Cycles(0));
        }
        assert!((s.cluster_average(ClusterId(0), Cycles(100)) - 8.0).abs() < 1e-12);
        assert_eq!(s.busy_now(ClusterId(0)), 8);
    }

    #[test]
    fn total_average_sums_clusters() {
        let mut s = Statfx::new(2, 8);
        s.mark_busy(CeId(0), Cycles(0)); // cluster 0
        s.mark_busy(CeId(8), Cycles(0)); // cluster 1
        s.mark_busy(CeId(9), Cycles(0)); // cluster 1
        assert!((s.total_average(Cycles(10)) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn marking_is_idempotent() {
        let mut s = Statfx::new(1, 8);
        s.mark_busy(CeId(3), Cycles(0));
        s.mark_busy(CeId(3), Cycles(10));
        assert_eq!(s.busy_now(ClusterId(0)), 1);
        s.mark_idle(CeId(3), Cycles(20));
        s.mark_idle(CeId(3), Cycles(30));
        assert_eq!(s.busy_now(ClusterId(0)), 0);
    }

    #[test]
    fn staggered_busy_periods_integrate_correctly() {
        let mut s = Statfx::new(1, 8);
        // CE0 busy [0,100); CE1 busy [50,100): integral = 100 + 50 = 150.
        s.mark_busy(CeId(0), Cycles(0));
        s.mark_busy(CeId(1), Cycles(50));
        s.mark_idle(CeId(0), Cycles(100));
        s.mark_idle(CeId(1), Cycles(100));
        assert!((s.cluster_average(ClusterId(0), Cycles(100)) - 1.5).abs() < 1e-12);
    }
}
