//! The "Q" utilization facility.
//!
//! "To characterize the operating system overheads, the total completion
//! time is broken into its individual components — user/CPU, system,
//! interrupt, and spin times. This breakdown was obtained using a
//! software measurement facility Q which monitors the utilization of
//! each cluster" (§5). The monitor accumulates wall-clock time per
//! cluster in the three OS categories; user time is the remainder of the
//! completion time.

use cedar_hw::ClusterId;
use cedar_sim::Cycles;
use cedar_xylem::accounting::Category;

/// Wall-time utilization of one cluster split into Figure 3's categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClusterUtilization {
    /// General system work (context switches, syscalls, critical
    /// sections, page faults, ASTs).
    pub system: Cycles,
    /// Interrupt servicing (software + cross-processor interrupts).
    pub interrupt: Cycles,
    /// Kernel lock spin.
    pub spin: Cycles,
}

impl ClusterUtilization {
    /// Total OS wall time on this cluster.
    pub fn os_total(&self) -> Cycles {
        self.system + self.interrupt + self.spin
    }

    /// User time, given the run's completion time.
    ///
    /// Saturates at zero: overlapping OS service on different CEs of a
    /// cluster is charged additively (the paper's per-activity times are
    /// additive too), which on degenerate micro-runs can exceed the wall
    /// clock. Use [`is_overcommitted`](Self::is_overcommitted) to detect
    /// that case.
    pub fn user(&self, completion_time: Cycles) -> Cycles {
        completion_time.saturating_sub(self.os_total())
    }

    /// `true` when additive OS charges exceed the wall clock (only
    /// plausible on unrealistically small workloads).
    pub fn is_overcommitted(&self, completion_time: Cycles) -> bool {
        self.os_total() > completion_time
    }
}

/// Per-cluster Q accounting.
#[derive(Debug, Clone)]
pub struct QMonitor {
    clusters: Vec<ClusterUtilization>,
}

impl QMonitor {
    /// Creates the monitor for `clusters` clusters.
    pub fn new(clusters: u8) -> Self {
        QMonitor {
            clusters: vec![ClusterUtilization::default(); clusters as usize],
        }
    }

    /// Charges wall time on `cluster` to an OS category.
    ///
    /// # Panics
    ///
    /// Panics when charging to [`Category::User`] — user time is derived,
    /// never charged.
    pub fn charge(&mut self, cluster: ClusterId, category: Category, duration: Cycles) {
        let c = &mut self.clusters[cluster.0 as usize];
        match category {
            Category::System => c.system += duration,
            Category::Interrupt => c.interrupt += duration,
            Category::Spin => c.spin += duration,
            Category::User => panic!("user time is derived, not charged"),
        }
    }

    /// One cluster's utilization.
    pub fn cluster(&self, cluster: ClusterId) -> ClusterUtilization {
        self.clusters[cluster.0 as usize]
    }

    /// Number of clusters monitored.
    pub fn n_clusters(&self) -> u8 {
        self.clusters.len() as u8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_per_category() {
        let mut q = QMonitor::new(2);
        q.charge(ClusterId(0), Category::System, Cycles(100));
        q.charge(ClusterId(0), Category::System, Cycles(50));
        q.charge(ClusterId(0), Category::Interrupt, Cycles(30));
        q.charge(ClusterId(1), Category::Spin, Cycles(5));
        let c0 = q.cluster(ClusterId(0));
        assert_eq!(c0.system, Cycles(150));
        assert_eq!(c0.interrupt, Cycles(30));
        assert_eq!(c0.spin, Cycles::ZERO);
        assert_eq!(q.cluster(ClusterId(1)).spin, Cycles(5));
    }

    #[test]
    fn user_is_remainder_of_completion_time() {
        let mut q = QMonitor::new(1);
        q.charge(ClusterId(0), Category::System, Cycles(100));
        q.charge(ClusterId(0), Category::Interrupt, Cycles(40));
        q.charge(ClusterId(0), Category::Spin, Cycles(10));
        let c = q.cluster(ClusterId(0));
        assert_eq!(c.os_total(), Cycles(150));
        assert_eq!(c.user(Cycles(1000)), Cycles(850));
    }

    #[test]
    fn overcharging_saturates_and_is_detectable() {
        let mut q = QMonitor::new(1);
        q.charge(ClusterId(0), Category::System, Cycles(2000));
        let c = q.cluster(ClusterId(0));
        assert_eq!(c.user(Cycles(1000)), Cycles::ZERO);
        assert!(c.is_overcommitted(Cycles(1000)));
        assert!(!c.is_overcommitted(Cycles(3000)));
    }

    #[test]
    #[should_panic(expected = "derived, not charged")]
    fn charging_user_panics() {
        let mut q = QMonitor::new(1);
        q.charge(ClusterId(0), Category::User, Cycles(1));
    }
}
