//! The Figure 4 user-time taxonomy and per-task breakdowns.
//!
//! "The quantities below the horizontal line on each bar represent the
//! percentage of total execution time spent executing s(x)doall loop
//! iterations for both the main and the helper tasks, and the time spent
//! executing serial code and main cluster-only loops for the main task.
//! The quantities above the horizontal line characterize the
//! parallelization overheads" (§6). The breakdown is measured on each
//! task's lead CE, whose timeline partitions cleanly into these modes.

use std::fmt;

use cedar_sim::Cycles;

/// One bucket of a task's user time (Figure 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UserBucket {
    /// Executing `s(x)doall` loop iterations ("useful" work; below the
    /// line).
    IterExec,
    /// Executing serial code (main task only; below the line).
    Serial,
    /// Executing main-cluster-only loops (main task only; below the
    /// line).
    ClusterLoop,
    /// Setting up parallel-loop parameters (overhead).
    LoopSetup,
    /// Picking up iterations of hierarchical (sdoall/cdoall) loops and
    /// determining no more are left (overhead; stays ≲1%, §6).
    PickupSdoall,
    /// Picking up iterations of flat xdoall loops (overhead; the "xdoall
    /// loop distribution overhead" that reaches >10% at 32 processors).
    PickupXdoall,
    /// Main task spin-waiting at the `s(x)doall` finish barrier
    /// (overhead; main task only).
    BarrierWait,
    /// Helper task busy-waiting for parallel-loop work (overhead; helper
    /// tasks only).
    HelperWait,
    /// Intra-cluster (concurrency-bus) synchronization. The paper
    /// excludes cluster-level `cdoall` sync from its characterization
    /// (§3.2); kept separate here so it never contaminates the
    /// parallelization-overhead numbers.
    ClusterSync,
}

impl UserBucket {
    /// All buckets in display order (below-the-line first).
    pub const ALL: [UserBucket; 9] = [
        UserBucket::IterExec,
        UserBucket::Serial,
        UserBucket::ClusterLoop,
        UserBucket::LoopSetup,
        UserBucket::PickupSdoall,
        UserBucket::PickupXdoall,
        UserBucket::BarrierWait,
        UserBucket::HelperWait,
        UserBucket::ClusterSync,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            UserBucket::IterExec => "s(x)doall iters",
            UserBucket::Serial => "serial code",
            UserBucket::ClusterLoop => "cluster-only loops",
            UserBucket::LoopSetup => "loop setup",
            UserBucket::PickupSdoall => "sdoall pickup",
            UserBucket::PickupXdoall => "xdoall pickup",
            UserBucket::BarrierWait => "barrier wait",
            UserBucket::HelperWait => "helper wait",
            UserBucket::ClusterSync => "cluster sync",
        }
    }

    /// `true` for the parallelization-overhead buckets (above the
    /// horizontal line in Figures 5–9).
    pub fn is_parallelization_overhead(self) -> bool {
        matches!(
            self,
            UserBucket::LoopSetup
                | UserBucket::PickupSdoall
                | UserBucket::PickupXdoall
                | UserBucket::BarrierWait
                | UserBucket::HelperWait
        )
    }

    /// `true` for buckets counted as *parallel loop execution* when
    /// computing the parallel fraction `pf` of §7. Footnote 4: "For the
    /// xdoall loops, the iteration pick up is a parallel activity, and
    /// hence is included in the parallel fraction."
    pub fn counts_as_parallel_execution(self) -> bool {
        matches!(
            self,
            UserBucket::IterExec
                | UserBucket::ClusterLoop
                | UserBucket::PickupXdoall
                | UserBucket::ClusterSync
        )
    }
}

impl fmt::Display for UserBucket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A task's user-time breakdown (one bar of Figures 5–9).
#[derive(Debug, Clone, Default)]
pub struct TaskBreakdown {
    buckets: [Cycles; UserBucket::ALL.len()],
}

impl TaskBreakdown {
    /// Creates a zeroed breakdown.
    pub fn new() -> Self {
        TaskBreakdown::default()
    }

    fn index(bucket: UserBucket) -> usize {
        UserBucket::ALL
            .iter()
            .position(|b| *b == bucket)
            .expect("bucket present in ALL")
    }

    /// Charges `duration` to `bucket`.
    pub fn charge(&mut self, bucket: UserBucket, duration: Cycles) {
        self.buckets[Self::index(bucket)] += duration;
    }

    /// Accumulated time in `bucket`.
    pub fn get(&self, bucket: UserBucket) -> Cycles {
        self.buckets[Self::index(bucket)]
    }

    /// Total user time across all buckets.
    pub fn total(&self) -> Cycles {
        self.buckets.iter().copied().sum()
    }

    /// Total parallelization overhead (above-the-line buckets).
    pub fn parallelization_overhead(&self) -> Cycles {
        UserBucket::ALL
            .iter()
            .filter(|b| b.is_parallelization_overhead())
            .map(|b| self.get(*b))
            .sum()
    }

    /// Time counted as parallel-loop execution (for the `pf` of §7).
    pub fn parallel_execution(&self) -> Cycles {
        UserBucket::ALL
            .iter()
            .filter(|b| b.counts_as_parallel_execution())
            .map(|b| self.get(*b))
            .sum()
    }

    /// Fraction of `completion_time` spent in `bucket`.
    pub fn fraction(&self, bucket: UserBucket, completion_time: Cycles) -> f64 {
        self.get(bucket).fraction_of(completion_time)
    }

    /// Merges another breakdown into this one.
    pub fn merge(&mut self, other: &TaskBreakdown) {
        for (i, v) in other.buckets.iter().enumerate() {
            self.buckets[i] += *v;
        }
    }
}

/// Reconstructs a task's user-time breakdown from its lead CE's trace —
/// the paper's own trace-driven analysis path (§4: the event traces are
/// off-loaded and analysed off-line).
///
/// The lead CE's timeline partitions into modes delimited by the
/// instrumentation events; this walks the events in order and charges
/// each span to its Figure 4 bucket. OS time embedded in a span stays in
/// that span (the off-line analysis cannot see OS stalls either), so the
/// result can be slightly *larger* than the machine's directly-charged
/// breakdown, never smaller.
pub fn from_lead_trace(events: &[crate::event::TraceEvent], lead: cedar_hw::CeId) -> TaskBreakdown {
    use crate::event::TraceEventId as Id;
    let mut b = TaskBreakdown::new();
    let mut mode: Option<(UserBucket, u64)> = None; // (bucket, start ticks)
    let mut loop_kind: u32 = 0;
    for e in events.iter().filter(|e| e.ce == lead) {
        let t = e.at.0;
        let close = |b: &mut TaskBreakdown, mode: &mut Option<(UserBucket, u64)>, t: u64| {
            if let Some((bucket, start)) = mode.take() {
                b.charge(bucket, Cycles((t - start) / cedar_sim::HPM_TICKS_PER_CYCLE));
            }
        };
        let open = |mode: &mut Option<(UserBucket, u64)>, bucket: UserBucket, t: u64| {
            *mode = Some((bucket, t));
        };
        match e.id {
            Id::SerialStart => {
                close(&mut b, &mut mode, t);
                open(&mut mode, UserBucket::Serial, t);
            }
            Id::SerialEnd => close(&mut b, &mut mode, t),
            Id::LoopSetupEnter => {
                close(&mut b, &mut mode, t);
                open(&mut mode, UserBucket::LoopSetup, t);
            }
            Id::LoopSetupExit => close(&mut b, &mut mode, t),
            Id::ClusterLoopStart => {
                close(&mut b, &mut mode, t);
                open(&mut mode, UserBucket::ClusterLoop, t);
            }
            Id::ClusterLoopEnd => close(&mut b, &mut mode, t),
            Id::PickIterEnter => {
                close(&mut b, &mut mode, t);
                loop_kind = e.arg;
                let bucket = if e.arg == crate::event::loop_kind_code::XDOALL {
                    UserBucket::PickupXdoall
                } else {
                    UserBucket::PickupSdoall
                };
                open(&mut mode, bucket, t);
            }
            Id::PickIterExit => close(&mut b, &mut mode, t),
            Id::IterStart => {
                close(&mut b, &mut mode, t);
                let bucket = if e.arg == crate::event::loop_kind_code::CLUSTER
                    || e.arg == crate::event::loop_kind_code::DOACROSS
                {
                    UserBucket::ClusterLoop
                } else {
                    UserBucket::IterExec
                };
                open(&mut mode, bucket, t);
            }
            Id::IterEnd => {
                close(&mut b, &mut mode, t);
                // Between a body and the next pick/barrier the lead is in
                // intra-cluster territory; attribute to ClusterSync until
                // the next explicit event.
                let _ = loop_kind;
                open(&mut mode, UserBucket::ClusterSync, t);
            }
            Id::FinishBarrierEnter => {
                close(&mut b, &mut mode, t);
                open(&mut mode, UserBucket::BarrierWait, t);
            }
            Id::FinishBarrierExit => close(&mut b, &mut mode, t),
            Id::WaitForWorkEnter => {
                close(&mut b, &mut mode, t);
                open(&mut mode, UserBucket::HelperWait, t);
            }
            Id::WaitForWorkExit => close(&mut b, &mut mode, t),
            Id::HelperJoinLoop | Id::TaskDetach => {
                close(&mut b, &mut mode, t);
                open(&mut mode, UserBucket::HelperWait, t);
            }
            Id::ProgramEnd => close(&mut b, &mut mode, t),
            _ => {}
        }
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_and_total() {
        let mut b = TaskBreakdown::new();
        b.charge(UserBucket::IterExec, Cycles(700));
        b.charge(UserBucket::BarrierWait, Cycles(200));
        b.charge(UserBucket::LoopSetup, Cycles(100));
        assert_eq!(b.total(), Cycles(1000));
        assert_eq!(b.get(UserBucket::IterExec), Cycles(700));
        assert_eq!(b.parallelization_overhead(), Cycles(300));
    }

    #[test]
    fn overhead_classification_matches_figure4() {
        assert!(!UserBucket::IterExec.is_parallelization_overhead());
        assert!(!UserBucket::Serial.is_parallelization_overhead());
        assert!(!UserBucket::ClusterLoop.is_parallelization_overhead());
        assert!(UserBucket::LoopSetup.is_parallelization_overhead());
        assert!(UserBucket::PickupXdoall.is_parallelization_overhead());
        assert!(UserBucket::BarrierWait.is_parallelization_overhead());
        assert!(UserBucket::HelperWait.is_parallelization_overhead());
        assert!(!UserBucket::ClusterSync.is_parallelization_overhead());
    }

    #[test]
    fn parallel_fraction_includes_xdoall_pickup_per_footnote4() {
        assert!(UserBucket::PickupXdoall.counts_as_parallel_execution());
        assert!(!UserBucket::PickupSdoall.counts_as_parallel_execution());
        assert!(!UserBucket::BarrierWait.counts_as_parallel_execution());
        assert!(UserBucket::ClusterLoop.counts_as_parallel_execution());
    }

    #[test]
    fn fractions() {
        let mut b = TaskBreakdown::new();
        b.charge(UserBucket::Serial, Cycles(250));
        assert!((b.fraction(UserBucket::Serial, Cycles(1000)) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_bucketwise() {
        let mut a = TaskBreakdown::new();
        a.charge(UserBucket::IterExec, Cycles(10));
        let mut b = TaskBreakdown::new();
        b.charge(UserBucket::IterExec, Cycles(5));
        b.charge(UserBucket::HelperWait, Cycles(7));
        a.merge(&b);
        assert_eq!(a.get(UserBucket::IterExec), Cycles(15));
        assert_eq!(a.get(UserBucket::HelperWait), Cycles(7));
    }
}
