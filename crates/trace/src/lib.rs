//! # cedar-trace — measurement facilities
//!
//! Models of the three measurement tools the paper uses (§3–§4):
//!
//! * [`hpm`] — **cedarhpm**, the non-intrusive hardware performance
//!   monitor developed at UIUC CSRD \[14\]: instrumented code posts events
//!   to hardware trigger points; the monitor records `(event id,
//!   timestamp, processor id)` with 50 ns resolution at the cost of a
//!   single move instruction. In the simulator the cost is exactly zero.
//! * [`statfx`] — the software concurrency monitor: time-weighted average
//!   number of active processors per cluster (Table 1's `Concurr` rows).
//! * [`qmon`] — the **Q** utilization facility: per-cluster breakdown of
//!   completion time into user / system / interrupt / spin (Figure 3).
//!
//! [`event`] defines the instrumentation points inserted into the runtime
//! library, the OS and the applications (§4), [`intervals`] pairs
//! enter/exit events back into intervals, and [`breakdown`] holds the
//! Figure 4 user-time taxonomy that Figures 5–9 are drawn from.
//!
//! ## Example: posting and pairing events
//!
//! ```
//! use cedar_trace::{pair_intervals, HpmMonitor, TraceEventId};
//! use cedar_hw::CeId;
//! use cedar_sim::Cycles;
//!
//! let mut hpm = HpmMonitor::new();
//! hpm.post(TraceEventId::IterStart, CeId(3), 1, Cycles(100));
//! hpm.post(TraceEventId::IterEnd, CeId(3), 0, Cycles(350));
//! let intervals = pair_intervals(hpm.events(), TraceEventId::IterStart, TraceEventId::IterEnd);
//! assert_eq!(intervals[0].duration(), Cycles(250));
//! ```

pub mod breakdown;
pub mod event;
pub mod export;
pub mod hpm;
pub mod intervals;
pub mod qmon;
pub mod statfx;

pub use breakdown::{TaskBreakdown, UserBucket};
pub use event::{TraceEvent, TraceEventId};
pub use hpm::HpmMonitor;
pub use intervals::{pair_intervals, Interval};
pub use qmon::QMonitor;
pub use statfx::Statfx;
