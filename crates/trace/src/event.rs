//! Instrumentation points and trace records.
//!
//! §4 lists the events inserted into the Cedar Fortran runtime library
//! and the Xylem OS. Each recorded event carries the event id, a
//! timestamp (50 ns resolution) and the id of the processor it occurred
//! on — exactly the `cedarhpm` record format — plus a small argument word
//! the analysis uses to distinguish loop constructs.

use cedar_hw::CeId;
use cedar_sim::HpmTicks;

/// Identifies an instrumentation point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceEventId {
    // ---- runtime-library events (§4 items a–f of the RTL list) ----
    /// Main task encounters an `s(x)doall` loop (arg = loop kind code).
    MainEncounterLoop,
    /// A helper task joins in the execution of an `s(x)doall` loop.
    HelperJoinLoop,
    /// Entry to the pick-next-iteration routine (arg = loop kind code).
    PickIterEnter,
    /// Exit from the pick-next-iteration routine.
    PickIterExit,
    /// Start of one `s(x)doall` iteration body.
    IterStart,
    /// End of one `s(x)doall` iteration body.
    IterEnd,
    /// Main task enters the `s(x)doall` finish barrier.
    FinishBarrierEnter,
    /// Main task leaves the finish barrier (all helpers detached).
    FinishBarrierExit,
    /// Helper task enters its wait-for-work spin.
    WaitForWorkEnter,
    /// Helper task leaves wait-for-work (saw new parallel loop work).
    WaitForWorkExit,
    /// Entry to parallel-loop parameter setup.
    LoopSetupEnter,
    /// Exit from parallel-loop parameter setup.
    LoopSetupExit,
    /// A task detaches from the current loop.
    TaskDetach,

    // ---- application instrumentation (§6 footnote 2) ----
    /// Start of a main-cluster-only loop (`cdoall`/`cdoacross` without an
    /// outer spread loop).
    ClusterLoopStart,
    /// End of a main-cluster-only loop.
    ClusterLoopEnd,
    /// Start of a serial code section on the main task.
    SerialStart,
    /// End of a serial code section.
    SerialEnd,

    // ---- OS events (§4 items a–f of the OS list) ----
    /// Entry to an OS service routine (arg = activity code).
    OsServiceEnter,
    /// Exit from an OS service routine.
    OsServiceExit,
    /// Context switch between application and system task.
    ContextSwitch,

    // ---- program lifecycle ----
    /// Program (measured region) begins.
    ProgramStart,
    /// Program (measured region) ends.
    ProgramEnd,
}

/// Argument codes distinguishing loop constructs in pick/encounter events.
pub mod loop_kind_code {
    /// Hierarchical SDOALL/CDOALL construct.
    pub const SDOALL: u32 = 1;
    /// Flat XDOALL construct.
    pub const XDOALL: u32 = 2;
    /// Main-cluster-only CDOALL.
    pub const CLUSTER: u32 = 3;
    /// DOACROSS (serialized regions permitted).
    pub const DOACROSS: u32 = 4;
}

/// One record in the `cedarhpm` trace buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Which instrumentation point fired.
    pub id: TraceEventId,
    /// Timestamp at 50 ns resolution.
    pub at: HpmTicks,
    /// Processor the event occurred on.
    pub ce: CeId,
    /// Construct/loop argument (0 when unused).
    pub arg: u32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedar_sim::Cycles;

    #[test]
    fn event_record_layout() {
        let e = TraceEvent {
            id: TraceEventId::IterStart,
            at: Cycles(100).to_hpm_ticks(),
            ce: CeId(3),
            arg: loop_kind_code::XDOALL,
        };
        assert_eq!(e.at.0, 200); // 100 cycles = 200 hpm ticks
        assert_eq!(e.arg, 2);
    }

    #[test]
    fn loop_kind_codes_are_distinct() {
        let codes = [
            loop_kind_code::SDOALL,
            loop_kind_code::XDOALL,
            loop_kind_code::CLUSTER,
            loop_kind_code::DOACROSS,
        ];
        for (i, a) in codes.iter().enumerate() {
            for b in codes.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }
}
