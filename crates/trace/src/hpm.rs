//! The `cedarhpm` hardware performance monitor.
//!
//! "For each event, cedarhpm records the event id, the timestamp and the
//! id of the processor on which the event occurred. The timestamp
//! resolution is 50 nanoseconds. The recording of each event is as cheap
//! as a single move assembly level instruction, and thus causes
//! negligible overhead" (§4). The simulated monitor is *exactly*
//! non-intrusive: posting costs zero simulated time.

use cedar_hw::CeId;
use cedar_sim::SimTime;

use crate::event::{TraceEvent, TraceEventId};

/// The trace buffer of the hardware performance monitor.
///
/// # Example
///
/// ```
/// use cedar_trace::{HpmMonitor, TraceEventId};
/// use cedar_hw::CeId;
/// use cedar_sim::Cycles;
///
/// let mut hpm = HpmMonitor::new();
/// hpm.post(TraceEventId::ProgramStart, CeId(0), 0, Cycles(0));
/// hpm.post(TraceEventId::ProgramEnd, CeId(0), 0, Cycles(500));
/// assert_eq!(hpm.events().len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct HpmMonitor {
    events: Vec<TraceEvent>,
    enabled: bool,
}

impl HpmMonitor {
    /// Creates an enabled monitor with an empty trace buffer.
    pub fn new() -> Self {
        HpmMonitor {
            events: Vec::new(),
            enabled: true,
        }
    }

    /// Posts an event to the trigger point (no simulated cost).
    pub fn post(&mut self, id: TraceEventId, ce: CeId, arg: u32, now: SimTime) {
        if self.enabled {
            self.events.push(TraceEvent {
                id,
                at: now.to_hpm_ticks(),
                ce,
                arg,
            });
        }
    }

    /// Turns recording on or off (the real monitor is armed around the
    /// measured region).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether recording is currently on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The recorded trace, in posting order (equivalently, time order —
    /// the simulation posts monotonically).
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Consumes the monitor, off-loading the trace buffer (the paper
    /// off-loads to a Sun workstation at program end).
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }

    /// Events matching `id`, in order.
    pub fn filter(&self, id: TraceEventId) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.id == id)
    }

    /// Events that occurred on `ce`, in order.
    pub fn for_ce(&self, ce: CeId) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.ce == ce)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedar_sim::Cycles;

    #[test]
    fn posts_record_id_time_and_processor() {
        let mut hpm = HpmMonitor::new();
        hpm.post(TraceEventId::IterStart, CeId(7), 2, Cycles(123));
        let e = hpm.events()[0];
        assert_eq!(e.id, TraceEventId::IterStart);
        assert_eq!(e.ce, CeId(7));
        assert_eq!(e.at, Cycles(123).to_hpm_ticks());
        assert_eq!(e.arg, 2);
    }

    #[test]
    fn disabled_monitor_drops_events() {
        let mut hpm = HpmMonitor::new();
        hpm.set_enabled(false);
        hpm.post(TraceEventId::IterStart, CeId(0), 0, Cycles(0));
        assert!(hpm.events().is_empty());
        hpm.set_enabled(true);
        hpm.post(TraceEventId::IterStart, CeId(0), 0, Cycles(0));
        assert_eq!(hpm.events().len(), 1);
    }

    #[test]
    fn filter_by_id_and_ce() {
        let mut hpm = HpmMonitor::new();
        hpm.post(TraceEventId::IterStart, CeId(0), 0, Cycles(0));
        hpm.post(TraceEventId::IterEnd, CeId(0), 0, Cycles(10));
        hpm.post(TraceEventId::IterStart, CeId(1), 0, Cycles(5));
        assert_eq!(hpm.filter(TraceEventId::IterStart).count(), 2);
        assert_eq!(hpm.for_ce(CeId(0)).count(), 2);
    }

    #[test]
    fn into_events_offloads_buffer() {
        let mut hpm = HpmMonitor::new();
        hpm.post(TraceEventId::ProgramStart, CeId(0), 0, Cycles(0));
        let events = hpm.into_events();
        assert_eq!(events.len(), 1);
    }
}
