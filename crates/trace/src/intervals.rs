//! Pairing enter/exit trace events back into intervals.
//!
//! The paper's analysis reconstructs durations from the off-loaded
//! `cedarhpm` trace by matching entry and exit events per processor; this
//! module is that post-processing step.

use cedar_hw::CeId;
use cedar_sim::{Cycles, HpmTicks};

use crate::event::{TraceEvent, TraceEventId};

/// A reconstructed interval on one processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Processor the interval occurred on.
    pub ce: CeId,
    /// Interval start.
    pub start: HpmTicks,
    /// Interval end.
    pub end: HpmTicks,
    /// Argument of the *enter* event.
    pub arg: u32,
}

impl Interval {
    /// Interval duration in CE cycles.
    pub fn duration(&self) -> Cycles {
        Cycles((self.end.0 - self.start.0) / cedar_sim::HPM_TICKS_PER_CYCLE)
    }
}

/// Pairs `enter`/`exit` events per processor, in time order.
///
/// Unmatched enters (program ended inside the region) are dropped, as the
/// paper's off-line analysis would drop them. Exits without a pending
/// enter are ignored.
pub fn pair_intervals(
    events: &[TraceEvent],
    enter: TraceEventId,
    exit: TraceEventId,
) -> Vec<Interval> {
    let mut open: Vec<(CeId, HpmTicks, u32)> = Vec::new();
    let mut out = Vec::new();
    for e in events {
        if e.id == enter {
            open.push((e.ce, e.at, e.arg));
        } else if e.id == exit {
            if let Some(pos) = open.iter().rposition(|(ce, _, _)| *ce == e.ce) {
                let (ce, start, arg) = open.remove(pos);
                out.push(Interval {
                    ce,
                    start,
                    end: e.at,
                    arg,
                });
            }
        }
    }
    out
}

/// Sums the durations of intervals, optionally filtered by the enter
/// event's argument.
pub fn total_duration(intervals: &[Interval], arg_filter: Option<u32>) -> Cycles {
    intervals
        .iter()
        .filter(|i| arg_filter.is_none_or(|a| i.arg == a))
        .map(Interval::duration)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedar_sim::Cycles;

    fn ev(id: TraceEventId, ce: u16, cycles: u64, arg: u32) -> TraceEvent {
        TraceEvent {
            id,
            at: Cycles(cycles).to_hpm_ticks(),
            ce: CeId(ce),
            arg,
        }
    }

    #[test]
    fn pairs_simple_interval() {
        let events = vec![
            ev(TraceEventId::IterStart, 0, 10, 1),
            ev(TraceEventId::IterEnd, 0, 30, 0),
        ];
        let iv = pair_intervals(&events, TraceEventId::IterStart, TraceEventId::IterEnd);
        assert_eq!(iv.len(), 1);
        assert_eq!(iv[0].duration(), Cycles(20));
        assert_eq!(iv[0].arg, 1);
    }

    #[test]
    fn pairs_per_processor_independently() {
        let events = vec![
            ev(TraceEventId::IterStart, 0, 0, 0),
            ev(TraceEventId::IterStart, 1, 5, 0),
            ev(TraceEventId::IterEnd, 1, 15, 0),
            ev(TraceEventId::IterEnd, 0, 40, 0),
        ];
        let iv = pair_intervals(&events, TraceEventId::IterStart, TraceEventId::IterEnd);
        assert_eq!(iv.len(), 2);
        let d: Vec<_> = iv.iter().map(|i| (i.ce.0, i.duration().0)).collect();
        assert!(d.contains(&(1, 10)));
        assert!(d.contains(&(0, 40)));
    }

    #[test]
    fn drops_unmatched_enter_and_stray_exit() {
        let events = vec![
            ev(TraceEventId::IterEnd, 0, 5, 0),    // stray exit
            ev(TraceEventId::IterStart, 0, 10, 0), // never closed
        ];
        let iv = pair_intervals(&events, TraceEventId::IterStart, TraceEventId::IterEnd);
        assert!(iv.is_empty());
    }

    #[test]
    fn nested_intervals_match_innermost_first() {
        // rposition pairs an exit with the most recent enter on that CE.
        let events = vec![
            ev(TraceEventId::PickIterEnter, 0, 0, 1),
            ev(TraceEventId::PickIterEnter, 0, 10, 2),
            ev(TraceEventId::PickIterExit, 0, 20, 0),
            ev(TraceEventId::PickIterExit, 0, 50, 0),
        ];
        let iv = pair_intervals(
            &events,
            TraceEventId::PickIterEnter,
            TraceEventId::PickIterExit,
        );
        assert_eq!(iv.len(), 2);
        assert_eq!(iv[0].arg, 2);
        assert_eq!(iv[0].duration(), Cycles(10));
        assert_eq!(iv[1].arg, 1);
        assert_eq!(iv[1].duration(), Cycles(50));
    }

    #[test]
    fn total_duration_filters_by_arg() {
        let events = vec![
            ev(TraceEventId::PickIterEnter, 0, 0, 1),
            ev(TraceEventId::PickIterExit, 0, 10, 0),
            ev(TraceEventId::PickIterEnter, 0, 20, 2),
            ev(TraceEventId::PickIterExit, 0, 50, 0),
        ];
        let iv = pair_intervals(
            &events,
            TraceEventId::PickIterEnter,
            TraceEventId::PickIterExit,
        );
        assert_eq!(total_duration(&iv, None), Cycles(40));
        assert_eq!(total_duration(&iv, Some(1)), Cycles(10));
        assert_eq!(total_duration(&iv, Some(2)), Cycles(30));
    }
}
