//! Unit coverage for [`cedar_trace::breakdown::from_lead_trace`] — the
//! off-line trace-driven breakdown reconstruction (§4: traces are
//! off-loaded and analysed off-line) — on hand-built event sequences.
//!
//! Each test lays out a tiny `cedarhpm` timeline by hand and asserts
//! exactly which Figure-4 bucket every span lands in, including the
//! tick→cycle conversion, the sdoall/xdoall pickup distinction, the
//! post-iteration `ClusterSync` attribution, and the lead-CE filter.

use cedar_hw::CeId;
use cedar_sim::{Cycles, HPM_TICKS_PER_CYCLE};
use cedar_trace::breakdown::from_lead_trace;
use cedar_trace::event::{loop_kind_code, TraceEvent, TraceEventId as Id};
use cedar_trace::UserBucket;

const LEAD: CeId = CeId(0);

/// Event on the lead CE at cycle `t` (converted to HPM ticks).
fn ev(id: Id, t: u64, arg: u32) -> TraceEvent {
    TraceEvent {
        id,
        at: Cycles(t).to_hpm_ticks(),
        ce: LEAD,
        arg,
    }
}

#[test]
fn serial_span_charges_serial_in_cycles_not_ticks() {
    let b = from_lead_trace(
        &[ev(Id::SerialStart, 0, 0), ev(Id::SerialEnd, 100, 0)],
        LEAD,
    );
    assert_eq!(b.get(UserBucket::Serial), Cycles(100));
    assert_eq!(b.total(), Cycles(100), "nothing else was charged");
    // Guard the scaling assumption the function divides by.
    const { assert!(HPM_TICKS_PER_CYCLE > 1, "ticks are finer than cycles") };
}

#[test]
fn pickup_bucket_follows_the_loop_kind_argument() {
    let sdoall = from_lead_trace(
        &[
            ev(Id::PickIterEnter, 0, loop_kind_code::SDOALL),
            ev(Id::PickIterExit, 7, 0),
        ],
        LEAD,
    );
    assert_eq!(sdoall.get(UserBucket::PickupSdoall), Cycles(7));
    assert_eq!(sdoall.get(UserBucket::PickupXdoall), Cycles(0));

    let xdoall = from_lead_trace(
        &[
            ev(Id::PickIterEnter, 0, loop_kind_code::XDOALL),
            ev(Id::PickIterExit, 7, 0),
        ],
        LEAD,
    );
    assert_eq!(xdoall.get(UserBucket::PickupXdoall), Cycles(7));
    assert_eq!(xdoall.get(UserBucket::PickupSdoall), Cycles(0));
}

#[test]
fn iteration_body_charges_iter_exec_and_the_gap_charges_cluster_sync() {
    // pick(2) → iter body(10) → 3-cycle gap to the next pick: the gap is
    // intra-cluster territory and must land in ClusterSync, not IterExec.
    let b = from_lead_trace(
        &[
            ev(Id::PickIterEnter, 0, loop_kind_code::SDOALL),
            ev(Id::PickIterExit, 2, 0),
            ev(Id::IterStart, 2, loop_kind_code::SDOALL),
            ev(Id::IterEnd, 12, 0),
            ev(Id::PickIterEnter, 15, loop_kind_code::SDOALL),
            ev(Id::PickIterExit, 16, 0),
            ev(Id::ProgramEnd, 16, 0),
        ],
        LEAD,
    );
    assert_eq!(b.get(UserBucket::PickupSdoall), Cycles(3)); // 2 + 1
    assert_eq!(b.get(UserBucket::IterExec), Cycles(10));
    assert_eq!(b.get(UserBucket::ClusterSync), Cycles(3));
    assert_eq!(b.total(), Cycles(16), "the timeline partitions exactly");
}

#[test]
fn cluster_loop_iterations_stay_out_of_the_parallel_buckets() {
    // A cdoall/doacross body is main-cluster-only loop time (below the
    // line), never s(x)doall IterExec.
    for kind in [loop_kind_code::CLUSTER, loop_kind_code::DOACROSS] {
        let b = from_lead_trace(
            &[
                ev(Id::IterStart, 0, kind),
                ev(Id::IterEnd, 20, 0),
                ev(Id::ProgramEnd, 20, 0),
            ],
            LEAD,
        );
        assert_eq!(b.get(UserBucket::ClusterLoop), Cycles(20), "kind {kind}");
        assert_eq!(b.get(UserBucket::IterExec), Cycles(0), "kind {kind}");
    }
}

#[test]
fn barrier_and_helper_waits_are_parallelization_overhead() {
    let b = from_lead_trace(
        &[
            ev(Id::FinishBarrierEnter, 0, 0),
            ev(Id::FinishBarrierExit, 30, 0),
            ev(Id::WaitForWorkEnter, 30, 0),
            ev(Id::WaitForWorkExit, 50, 0),
        ],
        LEAD,
    );
    assert_eq!(b.get(UserBucket::BarrierWait), Cycles(30));
    assert_eq!(b.get(UserBucket::HelperWait), Cycles(20));
    assert_eq!(b.parallelization_overhead(), Cycles(50));
    assert_eq!(b.parallel_execution(), Cycles(0));
}

#[test]
fn loop_setup_span_is_charged_to_loop_setup() {
    let b = from_lead_trace(
        &[ev(Id::LoopSetupEnter, 5, 0), ev(Id::LoopSetupExit, 11, 0)],
        LEAD,
    );
    assert_eq!(b.get(UserBucket::LoopSetup), Cycles(6));
    assert!(UserBucket::LoopSetup.is_parallelization_overhead());
}

#[test]
fn other_ces_events_are_ignored() {
    let mut events = vec![ev(Id::SerialStart, 0, 0), ev(Id::SerialEnd, 40, 0)];
    // A noisy neighbour on CE 3: must not open/close lead spans.
    events.push(TraceEvent {
        id: Id::SerialEnd,
        at: Cycles(10).to_hpm_ticks(),
        ce: CeId(3),
        arg: 0,
    });
    events.push(TraceEvent {
        id: Id::FinishBarrierEnter,
        at: Cycles(20).to_hpm_ticks(),
        ce: CeId(3),
        arg: 0,
    });
    let b = from_lead_trace(&events, LEAD);
    assert_eq!(b.get(UserBucket::Serial), Cycles(40));
    assert_eq!(b.get(UserBucket::BarrierWait), Cycles(0));
    assert_eq!(b.total(), Cycles(40));
}

#[test]
fn program_end_closes_an_open_span() {
    let b = from_lead_trace(
        &[ev(Id::WaitForWorkEnter, 0, 0), ev(Id::ProgramEnd, 25, 0)],
        LEAD,
    );
    assert_eq!(b.get(UserBucket::HelperWait), Cycles(25));
}

#[test]
fn detach_and_join_open_helper_wait_spans() {
    // After detaching from a loop the helper busy-waits for work until
    // the next join; both transitions route through HelperWait.
    let b = from_lead_trace(
        &[
            ev(Id::IterStart, 0, loop_kind_code::SDOALL),
            ev(Id::IterEnd, 10, 0),
            ev(Id::TaskDetach, 12, 0),
            ev(Id::HelperJoinLoop, 30, 0),
            ev(Id::PickIterEnter, 35, loop_kind_code::SDOALL),
            ev(Id::PickIterExit, 36, 0),
            ev(Id::ProgramEnd, 36, 0),
        ],
        LEAD,
    );
    assert_eq!(b.get(UserBucket::IterExec), Cycles(10));
    assert_eq!(b.get(UserBucket::ClusterSync), Cycles(2)); // 10 → 12
                                                           // Detach opens a wait (12→30), join re-opens it (30→35).
    assert_eq!(b.get(UserBucket::HelperWait), Cycles(23));
    assert_eq!(b.get(UserBucket::PickupSdoall), Cycles(1));
    assert_eq!(b.total(), Cycles(36));
}

#[test]
fn an_empty_trace_yields_an_empty_breakdown() {
    let b = from_lead_trace(&[], LEAD);
    assert_eq!(b.total(), Cycles(0));
    for bucket in UserBucket::ALL {
        assert_eq!(b.get(bucket), Cycles(0), "{bucket:?}");
    }
}
