//! The `s(x)doall` finish barrier.
//!
//! "After each SDOALL loop, the main task spin waits at a barrier for all
//! the helpers which entered the loop to detach themselves. This is to
//! ensure that all helper tasks are finished with their work before the
//! main task executes the code after the loop" (§2). Joining tasks
//! fetch-add `+1` on the joined-count word; detaching tasks fetch-add
//! `-1`; the main task (after detaching itself) re-reads the count every
//! spin period until it reaches zero.

use cedar_hw::MemOp;
use cedar_sim::Cycles;

use crate::words::RtlWords;
use crate::WordIssue;

/// What the barrier spinner wants next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BarrierStep {
    /// Issue this read and feed the value back in.
    Issue(WordIssue),
    /// All joined tasks have detached; the main task proceeds.
    Released,
}

/// The main task's finish-barrier spin.
#[derive(Debug, Clone)]
pub struct FinishBarrier {
    words: RtlWords,
    period: Cycles,
    checks: u64,
    active: bool,
}

impl FinishBarrier {
    /// Creates the spinner reading through `words.joined` every `period`.
    pub fn new(words: RtlWords, period: Cycles) -> Self {
        FinishBarrier {
            words,
            period,
            checks: 0,
            active: false,
        }
    }

    /// Begins spinning: the first check is immediate.
    ///
    /// # Panics
    ///
    /// Panics if already spinning.
    pub fn begin(&mut self) -> BarrierStep {
        assert!(!self.active, "finish barrier already active");
        self.active = true;
        self.checks += 1;
        BarrierStep::Issue(WordIssue::now(self.words.joined, MemOp::Read))
    }

    /// Feeds the observed joined count back in.
    ///
    /// # Panics
    ///
    /// Panics if not spinning.
    pub fn on_value(&mut self, joined: u64) -> BarrierStep {
        assert!(self.active, "on_value with no barrier active");
        if joined == 0 {
            self.active = false;
            BarrierStep::Released
        } else {
            self.checks += 1;
            BarrierStep::Issue(WordIssue::after(
                self.words.joined,
                MemOp::Read,
                self.period,
            ))
        }
    }

    /// Reads issued so far (across all barrier episodes).
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// `true` while spinning.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// The fetch-add a task issues when *joining* a loop.
    pub fn join_op(words: &RtlWords) -> WordIssue {
        WordIssue::now(words.joined, MemOp::FetchAdd(1))
    }

    /// The fetch-add a task issues when *detaching* from a loop.
    pub fn detach_op(words: &RtlWords) -> WordIssue {
        WordIssue::now(words.joined, MemOp::FetchAdd(-1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn barrier() -> FinishBarrier {
        FinishBarrier::new(RtlWords::cedar(), Cycles(60))
    }

    #[test]
    fn releases_when_count_reaches_zero() {
        let mut b = barrier();
        assert!(matches!(b.begin(), BarrierStep::Issue(_)));
        assert!(matches!(b.on_value(2), BarrierStep::Issue(_)));
        assert!(matches!(b.on_value(1), BarrierStep::Issue(_)));
        assert_eq!(b.on_value(0), BarrierStep::Released);
        assert!(!b.is_active());
        assert_eq!(b.checks(), 3);
    }

    #[test]
    fn rechecks_are_delayed_by_spin_period() {
        let mut b = barrier();
        b.begin();
        match b.on_value(3) {
            BarrierStep::Issue(i) => {
                assert_eq!(i.after, Cycles(60));
                assert_eq!(i.op, MemOp::Read);
            }
            other => panic!("expected delayed re-read, got {other:?}"),
        }
    }

    #[test]
    fn immediate_release_when_no_helpers_joined() {
        let mut b = barrier();
        b.begin();
        assert_eq!(b.on_value(0), BarrierStep::Released);
        assert_eq!(b.checks(), 1);
    }

    #[test]
    fn reusable_across_loops() {
        let mut b = barrier();
        b.begin();
        assert_eq!(b.on_value(0), BarrierStep::Released);
        b.begin();
        assert!(matches!(b.on_value(1), BarrierStep::Issue(_)));
        assert_eq!(b.on_value(0), BarrierStep::Released);
    }

    #[test]
    fn join_and_detach_are_fetch_adds() {
        let w = RtlWords::cedar();
        assert_eq!(FinishBarrier::join_op(&w).op, MemOp::FetchAdd(1));
        assert_eq!(FinishBarrier::detach_op(&w).op, MemOp::FetchAdd(-1));
        assert_eq!(FinishBarrier::join_op(&w).addr, w.joined);
    }

    #[test]
    #[should_panic(expected = "already active")]
    fn double_begin_panics() {
        let mut b = barrier();
        b.begin();
        b.begin();
    }
}
