//! DOACROSS serialization.
//!
//! "Cedar Fortran also provides DOACROSS loops to make it possible to
//! serialize regions within a parallel loop" (§2). The gate enforces
//! that the serialized region of iteration `i` runs only after iteration
//! `i − 1`'s region has completed, via a ticket word in global memory:
//! each CE entering its serialized region spins reading the ticket until
//! it equals its iteration number, and writes `i + 1` on exit.

use cedar_hw::{GlobalAddr, MemOp};
use cedar_sim::Cycles;

use crate::WordIssue;

/// What the gate wants next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateStep {
    /// Issue this word operation and feed the value back in.
    Issue(WordIssue),
    /// The serialized region may run now.
    Enter,
    /// The exit write completed; the next iteration's region may start.
    Exited,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Idle,
    WaitTicket,
    InRegion,
    WaitExit,
}

/// Per-CE state machine for one DOACROSS serialized region.
#[derive(Debug, Clone)]
pub struct DoacrossGate {
    ticket: GlobalAddr,
    iteration: u32,
    period: Cycles,
    state: State,
    spins: u64,
}

impl DoacrossGate {
    /// Creates the gate for `iteration`'s serialized region, spinning on
    /// the `ticket` word every `period` cycles.
    pub fn new(ticket: GlobalAddr, iteration: u32, period: Cycles) -> Self {
        DoacrossGate {
            ticket,
            iteration,
            period,
            state: State::Idle,
            spins: 0,
        }
    }

    /// Begins waiting to enter the serialized region.
    ///
    /// # Panics
    ///
    /// Panics unless the gate is idle.
    pub fn begin(&mut self) -> GateStep {
        assert_eq!(self.state, State::Idle, "gate already in use");
        self.state = State::WaitTicket;
        GateStep::Issue(WordIssue::now(self.ticket, MemOp::Read))
    }

    /// Feeds an observed ticket value (while waiting) back in.
    ///
    /// # Panics
    ///
    /// Panics if the gate is not waiting or exiting.
    pub fn on_value(&mut self, value: u64) -> GateStep {
        match self.state {
            State::WaitTicket => {
                if value == self.iteration as u64 {
                    self.state = State::InRegion;
                    GateStep::Enter
                } else {
                    self.spins += 1;
                    GateStep::Issue(WordIssue::after(self.ticket, MemOp::Read, self.period))
                }
            }
            State::WaitExit => {
                self.state = State::Idle;
                GateStep::Exited
            }
            _ => panic!("on_value in state {:?}", self.state),
        }
    }

    /// Leaves the serialized region: writes the next ticket.
    ///
    /// # Panics
    ///
    /// Panics unless inside the region.
    pub fn exit(&mut self) -> GateStep {
        assert_eq!(self.state, State::InRegion, "exit outside region");
        self.state = State::WaitExit;
        GateStep::Issue(WordIssue::now(
            self.ticket,
            MemOp::Write(self.iteration as u64 + 1),
        ))
    }

    /// Ticket re-reads while waiting.
    pub fn spins(&self) -> u64 {
        self.spins
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gate(i: u32) -> DoacrossGate {
        DoacrossGate::new(GlobalAddr(0x3000), i, Cycles(40))
    }

    #[test]
    fn iteration_zero_enters_immediately() {
        let mut g = gate(0);
        assert!(matches!(g.begin(), GateStep::Issue(_)));
        assert_eq!(g.on_value(0), GateStep::Enter);
        assert_eq!(g.spins(), 0);
    }

    #[test]
    fn later_iteration_spins_until_its_turn() {
        let mut g = gate(2);
        g.begin();
        assert!(matches!(g.on_value(0), GateStep::Issue(i) if i.after == Cycles(40)));
        assert!(matches!(g.on_value(1), GateStep::Issue(_)));
        assert_eq!(g.on_value(2), GateStep::Enter);
        assert_eq!(g.spins(), 2);
    }

    #[test]
    fn exit_writes_next_ticket() {
        let mut g = gate(5);
        g.begin();
        g.on_value(5);
        match g.exit() {
            GateStep::Issue(i) => assert_eq!(i.op, MemOp::Write(6)),
            other => panic!("expected ticket write, got {other:?}"),
        }
        assert_eq!(g.on_value(0), GateStep::Exited);
    }

    #[test]
    #[should_panic(expected = "exit outside region")]
    fn exit_before_enter_panics() {
        gate(1).exit();
    }

    #[test]
    fn gates_chain_in_iteration_order() {
        // Simulate the ticket word: gate 0 exits, enabling gate 1.
        let mut ticket = 0u64;
        let mut g0 = gate(0);
        let mut g1 = gate(1);
        g0.begin();
        assert_eq!(g0.on_value(ticket), GateStep::Enter);
        g1.begin();
        assert!(matches!(g1.on_value(ticket), GateStep::Issue(_)));
        if let GateStep::Issue(i) = g0.exit() {
            if let MemOp::Write(v) = i.op {
                ticket = v;
            }
        }
        g0.on_value(0);
        assert_eq!(g1.on_value(ticket), GateStep::Enter);
    }
}
