//! The helper task's wait-for-work spin.
//!
//! "When a helper task is scheduled to run on its cluster, it begins
//! spin-waiting for work. When the main task of an application encounters
//! an SDOALL, it posts the same in the shared global memory. When this is
//! seen by a helper task of that application, it joins in the execution
//! of the loop" (§2). The helper's lead CE re-reads the
//! `sdoall_activity` word in global memory every few cycles (§7).

use cedar_hw::MemOp;
use cedar_sim::Cycles;

use crate::loops::{unpack_activity, LoopKind, TERMINATE_CODE};
use crate::words::RtlWords;
use crate::WordIssue;

/// What the waiting helper wants next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitStep {
    /// Issue this read of the activity word and feed the value back in.
    Issue(WordIssue),
    /// A new cross-cluster loop was posted; join it.
    NewWork {
        /// The loop's sequence number.
        seq: u32,
        /// The loop construct.
        kind: LoopKind,
    },
    /// The main task signalled program termination.
    Terminate,
}

/// The helper's activity-word spin state machine.
#[derive(Debug, Clone)]
pub struct WorkWaiter {
    words: RtlWords,
    period: Cycles,
    last_seq: u32,
    checks: u64,
    stalled: Cycles,
    active: bool,
}

impl WorkWaiter {
    /// Creates a waiter polling `words.activity` every `period`.
    pub fn new(words: RtlWords, period: Cycles) -> Self {
        WorkWaiter {
            words,
            period,
            last_seq: 0,
            checks: 0,
            stalled: Cycles::ZERO,
            active: false,
        }
    }

    /// Begins (or resumes) spin-waiting; the first check is immediate.
    ///
    /// # Panics
    ///
    /// Panics if already spinning.
    pub fn begin(&mut self) -> WaitStep {
        assert!(!self.active, "wait-for-work already active");
        self.active = true;
        self.checks += 1;
        WaitStep::Issue(WordIssue::now(self.words.activity, MemOp::Read))
    }

    /// Feeds the observed activity word back in.
    ///
    /// # Panics
    ///
    /// Panics if not spinning.
    pub fn on_value(&mut self, word: u64) -> WaitStep {
        assert!(self.active, "on_value with no wait active");
        let (seq, code) = unpack_activity(word);
        if code == TERMINATE_CODE {
            self.active = false;
            return WaitStep::Terminate;
        }
        if seq > self.last_seq {
            if let Some(kind) = LoopKind::from_code(code) {
                if kind.is_cross_cluster() {
                    self.last_seq = seq;
                    self.active = false;
                    return WaitStep::NewWork { seq, kind };
                }
            }
        }
        self.checks += 1;
        WaitStep::Issue(WordIssue::after(
            self.words.activity,
            MemOp::Read,
            self.period,
        ))
    }

    /// Marks a loop sequence as already handled (used when the helper
    /// learns the seq from the descriptor re-validation instead).
    pub fn mark_seen(&mut self, seq: u32) {
        self.last_seq = self.last_seq.max(seq);
    }

    /// Activity-word reads issued so far.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// Records `d` cycles the spinning helper lost to an external stall
    /// (OS descheduling, fault injection). Telemetry only: the stall
    /// itself is applied on the helper's CE timeline; this keeps the
    /// wait-phase share of the loss visible per task.
    pub fn record_stall(&mut self, d: Cycles) {
        self.stalled += d;
    }

    /// Total stall time recorded while wait-for-work was active.
    pub fn stalled(&self) -> Cycles {
        self.stalled
    }

    /// `true` while spinning.
    pub fn is_active(&self) -> bool {
        self.active
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loops::pack_activity;

    fn waiter() -> WorkWaiter {
        WorkWaiter::new(RtlWords::cedar(), Cycles(60))
    }

    #[test]
    fn idle_word_keeps_spinning() {
        let mut w = waiter();
        w.begin();
        match w.on_value(0) {
            WaitStep::Issue(i) => {
                assert_eq!(i.after, Cycles(60));
                assert_eq!(i.op, MemOp::Read);
            }
            other => panic!("expected re-read, got {other:?}"),
        }
        assert_eq!(w.checks(), 2);
    }

    #[test]
    fn new_sdoall_is_reported() {
        let mut w = waiter();
        w.begin();
        let word = pack_activity(1, LoopKind::Sdoall.code());
        assert_eq!(
            w.on_value(word),
            WaitStep::NewWork {
                seq: 1,
                kind: LoopKind::Sdoall
            }
        );
        assert!(!w.is_active());
    }

    #[test]
    fn stale_seq_is_ignored() {
        let mut w = waiter();
        w.begin();
        let word = pack_activity(3, LoopKind::Xdoall.code());
        assert!(matches!(w.on_value(word), WaitStep::NewWork { seq: 3, .. }));
        // Re-arm; the same (old) word must not re-trigger.
        w.begin();
        assert!(matches!(w.on_value(word), WaitStep::Issue(_)));
    }

    #[test]
    fn cluster_loops_do_not_wake_helpers() {
        let mut w = waiter();
        w.begin();
        let word = pack_activity(1, LoopKind::Cluster.code());
        assert!(matches!(w.on_value(word), WaitStep::Issue(_)));
    }

    #[test]
    fn terminate_signal_stops_the_helper() {
        let mut w = waiter();
        w.begin();
        let word = pack_activity(99, TERMINATE_CODE);
        assert_eq!(w.on_value(word), WaitStep::Terminate);
    }

    #[test]
    fn stall_telemetry_accumulates_without_touching_the_spin() {
        let mut w = waiter();
        assert_eq!(w.stalled(), Cycles::ZERO);
        w.begin();
        w.record_stall(Cycles(800));
        w.record_stall(Cycles(200));
        assert_eq!(w.stalled(), Cycles(1_000));
        // The spin state machine is unaffected.
        assert!(w.is_active());
        assert_eq!(w.checks(), 1);
        assert!(matches!(w.on_value(0), WaitStep::Issue(_)));
    }

    #[test]
    fn mark_seen_suppresses_duplicate_joins() {
        let mut w = waiter();
        w.mark_seen(5);
        w.begin();
        let word = pack_activity(5, LoopKind::Sdoall.code());
        assert!(matches!(w.on_value(word), WaitStep::Issue(_)));
        let word6 = pack_activity(6, LoopKind::Sdoall.code());
        assert!(matches!(
            w.on_value(word6),
            WaitStep::NewWork { seq: 6, .. }
        ));
    }
}
