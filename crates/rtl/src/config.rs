//! Runtime-library timing parameters.

use cedar_sim::Cycles;

/// Costs and periods of the modelled Cedar Fortran runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RtlConfig {
    /// Period at which a spin-waiting helper re-reads the
    /// `sdoall_activity` word ("checking ... every few cycles", §7 — kept
    /// coarse enough that idle helpers cause negligible contention).
    pub activity_spin_period: Cycles,
    /// Period at which the main task re-reads the joined count while
    /// spin-waiting at the loop finish barrier.
    pub barrier_spin_period: Cycles,
    /// Backoff before re-issuing a failed test-and-set on the iteration
    /// lock.
    pub lock_backoff: Cycles,
    /// Local (non-network) work to set up loop parameters before the
    /// descriptor is posted.
    pub setup_local: Cycles,
    /// Local work a task performs when joining a posted loop.
    pub join_local: Cycles,
    /// Cost for a CE to claim the next inner (`cdoall`) iteration over
    /// the concurrency bus — intra-cluster self-scheduling is fast and
    /// network-free (§2).
    pub inner_claim: Cycles,
}

impl RtlConfig {
    /// Parameters calibrated for the Cedar reproduction.
    pub fn cedar() -> Self {
        RtlConfig {
            activity_spin_period: Cycles(60),
            barrier_spin_period: Cycles(60),
            lock_backoff: Cycles(150),
            setup_local: Cycles(60),
            join_local: Cycles(15),
            inner_claim: Cycles(3),
        }
    }
}

impl Default for RtlConfig {
    fn default() -> Self {
        RtlConfig::cedar()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cedar_defaults_are_sane() {
        let c = RtlConfig::cedar();
        assert!(c.activity_spin_period > Cycles(10), "spin must be coarse");
        assert!(c.inner_claim < Cycles(10), "cbus claim must be cheap");
        assert!(c.lock_backoff > Cycles::ZERO);
    }
}
