//! Well-known runtime-library words in global memory.
//!
//! The runtime keeps its coordination state — the `sdoall_activity` word,
//! the lock protecting the loop iteration index, the index itself, the
//! descriptor and the joined-task count — in shared global memory, where
//! every access travels through the interconnection network. Their
//! addresses are consecutive double words, so the interleaving places
//! them on distinct memory modules.

use cedar_hw::addr::DWORD_BYTES;
use cedar_hw::GlobalAddr;

/// Addresses of the runtime's coordination words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RtlWords {
    /// The `sdoall_activity` word helpers spin on (§7).
    pub activity: GlobalAddr,
    /// Lock protecting the loop iteration index (§6: the test-and-set
    /// target of `xdoall` distribution).
    pub lock: GlobalAddr,
    /// The shared loop iteration index.
    pub index: GlobalAddr,
    /// The packed loop descriptor (total iteration count).
    pub descriptor: GlobalAddr,
    /// Count of tasks currently joined to the loop (fetch-and-add).
    pub joined: GlobalAddr,
    /// DOACROSS serialization ticket (iteration whose serialized region
    /// may run).
    pub ticket: GlobalAddr,
}

impl RtlWords {
    /// The runtime data area used by the reproduction, starting at
    /// `base`. Consecutive double words land on consecutive modules.
    pub fn at(base: GlobalAddr) -> Self {
        RtlWords {
            activity: base,
            lock: base.offset(DWORD_BYTES),
            index: base.offset(2 * DWORD_BYTES),
            descriptor: base.offset(3 * DWORD_BYTES),
            joined: base.offset(4 * DWORD_BYTES),
            ticket: base.offset(5 * DWORD_BYTES),
        }
    }

    /// Default placement (past the zero page).
    pub fn cedar() -> Self {
        RtlWords::at(GlobalAddr(0x2000))
    }

    /// End of the runtime data area; application arrays are laid out
    /// above this.
    pub fn end(&self) -> GlobalAddr {
        self.ticket.offset(DWORD_BYTES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_are_distinct_dwords() {
        let w = RtlWords::cedar();
        let addrs = [
            w.activity,
            w.lock,
            w.index,
            w.descriptor,
            w.joined,
            w.ticket,
        ];
        for (i, a) in addrs.iter().enumerate() {
            for b in addrs.iter().skip(i + 1) {
                assert_ne!(a.dword_index(), b.dword_index());
            }
        }
    }

    #[test]
    fn words_land_on_distinct_modules() {
        let w = RtlWords::cedar();
        let m: Vec<u16> = [
            w.activity,
            w.lock,
            w.index,
            w.descriptor,
            w.joined,
            w.ticket,
        ]
        .iter()
        .map(|a| a.module(32).0)
        .collect();
        let mut dedup = m.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), m.len(), "interleaving must spread the words");
    }

    #[test]
    fn end_is_past_all_words() {
        let w = RtlWords::cedar();
        assert!(w.end() > w.ticket);
        assert!(w.ticket > w.joined);
    }
}
