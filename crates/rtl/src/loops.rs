//! Parallel-loop constructs and descriptors.

use std::fmt;

/// The Cedar Fortran loop-parallel constructs (§2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoopKind {
    /// Hierarchical SDOALL/CDOALL: outer iterations self-scheduled one
    /// per cluster task, inner iterations spread over the cluster.
    Sdoall,
    /// Flat XDOALL: all CEs of all clusters compete for iterations of a
    /// single global index.
    Xdoall,
    /// Main-cluster-only CDOALL (no outer spread loop).
    Cluster,
    /// DOACROSS: parallel loop with serialized regions.
    Doacross,
}

impl LoopKind {
    /// Code used in the packed activity word and trace-event arguments.
    pub fn code(self) -> u32 {
        match self {
            LoopKind::Sdoall => 1,
            LoopKind::Xdoall => 2,
            LoopKind::Cluster => 3,
            LoopKind::Doacross => 4,
        }
    }

    /// Decodes a construct code.
    pub fn from_code(code: u32) -> Option<LoopKind> {
        match code {
            1 => Some(LoopKind::Sdoall),
            2 => Some(LoopKind::Xdoall),
            3 => Some(LoopKind::Cluster),
            4 => Some(LoopKind::Doacross),
            _ => None,
        }
    }

    /// `true` for constructs posted to helpers across clusters (cluster
    /// loops and doacross run on the main cluster only).
    pub fn is_cross_cluster(self) -> bool {
        matches!(self, LoopKind::Sdoall | LoopKind::Xdoall)
    }
}

impl fmt::Display for LoopKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LoopKind::Sdoall => "sdoall",
            LoopKind::Xdoall => "xdoall",
            LoopKind::Cluster => "cdoall(main)",
            LoopKind::Doacross => "doacross",
        };
        f.write_str(s)
    }
}

/// Code used in the activity word to tell helpers the program has ended.
pub const TERMINATE_CODE: u32 = 7;

/// A posted parallel loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopDescriptor {
    /// Construct.
    pub kind: LoopKind,
    /// Monotonically increasing loop sequence number (starts at 1).
    pub seq: u32,
    /// Iterations to distribute: outer (`sdoall`) or flat (`xdoall`)
    /// count.
    pub total_iters: u32,
}

impl LoopDescriptor {
    /// Packs `(seq, kind)` into the activity word helpers spin on.
    pub fn activity_word(&self) -> u64 {
        pack_activity(self.seq, self.kind.code())
    }
}

/// Packs an activity word from a loop sequence number and construct code.
pub fn pack_activity(seq: u32, kind_code: u32) -> u64 {
    (seq as u64) << 3 | kind_code as u64
}

/// Unpacks an activity word into `(seq, kind_code)`.
pub fn unpack_activity(word: u64) -> (u32, u32) {
    ((word >> 3) as u32, (word & 0x7) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip() {
        for k in [
            LoopKind::Sdoall,
            LoopKind::Xdoall,
            LoopKind::Cluster,
            LoopKind::Doacross,
        ] {
            assert_eq!(LoopKind::from_code(k.code()), Some(k));
        }
        assert_eq!(LoopKind::from_code(0), None);
        assert_eq!(LoopKind::from_code(TERMINATE_CODE), None);
    }

    #[test]
    fn activity_word_round_trips() {
        let d = LoopDescriptor {
            kind: LoopKind::Xdoall,
            seq: 12345,
            total_iters: 99,
        };
        let (seq, code) = unpack_activity(d.activity_word());
        assert_eq!(seq, 12345);
        assert_eq!(code, LoopKind::Xdoall.code());
    }

    #[test]
    fn zero_word_means_no_work() {
        let (seq, code) = unpack_activity(0);
        assert_eq!(seq, 0);
        assert_eq!(LoopKind::from_code(code), None);
    }

    #[test]
    fn cross_cluster_classification() {
        assert!(LoopKind::Sdoall.is_cross_cluster());
        assert!(LoopKind::Xdoall.is_cross_cluster());
        assert!(!LoopKind::Cluster.is_cross_cluster());
        assert!(!LoopKind::Doacross.is_cross_cluster());
    }
}
