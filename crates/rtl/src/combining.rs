//! Software combining trees (Yew, Tzeng & Lawrie \[16\]).
//!
//! §6 argues that a flat 32-task barrier on one global-memory word
//! "would create a hot spot and could severely degrade performance for
//! all traffic in the multistage interconnection network \[15\]", and that
//! "special mechanisms such as hardware message combining in the
//! interconnection network or software combining tree approach \[16\]
//! would be needed". This module provides the combining-tree layout and
//! arrival logic so the claim can be measured (see the `combining`
//! experiment binary).
//!
//! An N-participant, fanout-k tree assigns each participant a leaf
//! counter; the *last* arriver at each node propagates one fetch-add to
//! the parent, so each counter word sees at most `k` operations and the
//! counters are spread across memory modules by the interleaving.

use cedar_hw::addr::DWORD_BYTES;
use cedar_hw::GlobalAddr;

/// Layout and arrival logic for one software combining tree.
#[derive(Debug, Clone)]
pub struct CombiningTree {
    base: GlobalAddr,
    fanout: u32,
    participants: u32,
    /// `levels[l]` = number of nodes at level `l` (0 = leaves).
    levels: Vec<u32>,
}

impl CombiningTree {
    /// Builds a tree for `participants` arrivers with the given fanout,
    /// its counters laid out from `base` (consecutive double words, so
    /// the interleaving spreads them across modules).
    ///
    /// # Panics
    ///
    /// Panics if `fanout < 2` or `participants == 0`.
    pub fn new(base: GlobalAddr, participants: u32, fanout: u32) -> Self {
        assert!(fanout >= 2, "combining fanout must be at least 2");
        assert!(participants > 0, "tree needs participants");
        let mut levels = Vec::new();
        let mut width = participants.div_ceil(fanout);
        loop {
            levels.push(width);
            if width == 1 {
                break;
            }
            width = width.div_ceil(fanout);
        }
        CombiningTree {
            base,
            fanout,
            participants,
            levels,
        }
    }

    /// Number of tree levels (1 for ≤ `fanout` participants).
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Total counter words the tree occupies.
    pub fn words(&self) -> u32 {
        self.levels.iter().sum()
    }

    /// Address of node `idx` at `level`.
    ///
    /// # Panics
    ///
    /// Panics if the node does not exist.
    pub fn node(&self, level: usize, idx: u32) -> GlobalAddr {
        assert!(level < self.levels.len(), "level {level} out of range");
        assert!(idx < self.levels[level], "node {idx} out of range");
        let before: u32 = self.levels[..level].iter().sum();
        self.base.offset((before + idx) as u64 * DWORD_BYTES)
    }

    /// The leaf node participant `p` arrives at.
    pub fn leaf_of(&self, p: u32) -> GlobalAddr {
        self.node(0, (p / self.fanout).min(self.levels[0] - 1))
    }

    /// How many arrivals node `idx` at `level` expects before it
    /// propagates to its parent (the last group may be partial).
    pub fn expected_at(&self, level: usize, idx: u32) -> u32 {
        let inputs = if level == 0 {
            self.participants
        } else {
            self.levels[level - 1]
        };
        let full = self.fanout;
        let last = idx == self.levels[level] - 1;
        if last {
            inputs - (self.levels[level] - 1) * full
        } else {
            full
        }
    }

    /// Given that a fetch-add on node `(level, idx)` returned `old`
    /// (pre-increment count), returns the parent node to propagate to —
    /// `Some(addr)` if this arrival completed the node and a parent
    /// exists, `None` otherwise. The root's completer is the barrier's
    /// releaser.
    pub fn propagate(&self, level: usize, idx: u32, old: u64) -> Propagation {
        let expected = self.expected_at(level, idx) as u64;
        if old + 1 < expected {
            return Propagation::Waiting;
        }
        if level + 1 >= self.levels.len() {
            // At the root: with a multi-level tree the root combines the
            // level below; a single-level tree's only node *is* the root.
            if self.levels.len() == 1 || level == self.levels.len() - 1 {
                return Propagation::Release;
            }
        }
        let parent_idx = (idx / self.fanout).min(self.levels[level + 1] - 1);
        Propagation::Up {
            level: level + 1,
            idx: parent_idx,
            addr: self.node(level + 1, parent_idx),
        }
    }

    /// Node coordinates of a leaf address (for driving `propagate`).
    pub fn leaf_index(&self, p: u32) -> u32 {
        (p / self.fanout).min(self.levels[0] - 1)
    }
}

/// Result of one combining-tree arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Propagation {
    /// Not the last arrival at this node; wait for release.
    Waiting,
    /// Last arrival: fetch-add the parent node next.
    Up {
        /// Parent level.
        level: usize,
        /// Parent index within the level.
        idx: u32,
        /// Parent counter address.
        addr: GlobalAddr,
    },
    /// Completed the root: release the barrier.
    Release,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree(n: u32, k: u32) -> CombiningTree {
        CombiningTree::new(GlobalAddr(0x4000), n, k)
    }

    #[test]
    fn single_level_tree_for_small_groups() {
        let t = tree(8, 8);
        assert_eq!(t.depth(), 1);
        assert_eq!(t.words(), 1);
        assert_eq!(t.expected_at(0, 0), 8);
    }

    #[test]
    fn thirty_two_participants_fanout_four() {
        let t = tree(32, 4);
        // 8 leaves, 2 mid nodes, 1 root.
        assert_eq!(t.depth(), 3);
        assert_eq!(t.words(), 8 + 2 + 1);
        assert_eq!(t.expected_at(0, 0), 4);
        assert_eq!(t.expected_at(1, 0), 4);
        assert_eq!(t.expected_at(2, 0), 2);
    }

    #[test]
    fn leaves_spread_across_modules() {
        let t = tree(32, 4);
        let modules: Vec<u16> = (0..8).map(|i| t.node(0, i).module(32).0).collect();
        let mut uniq = modules.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 8, "leaf counters on distinct modules");
    }

    #[test]
    fn propagation_chain_reaches_release() {
        let t = tree(32, 4);
        // Last arriver at leaf 0 (old = 3 of expected 4) goes up.
        match t.propagate(0, 0, 3) {
            Propagation::Up { level, idx, .. } => {
                assert_eq!((level, idx), (1, 0));
            }
            other => panic!("expected Up, got {other:?}"),
        }
        // Earlier arrivers wait.
        assert_eq!(t.propagate(0, 0, 1), Propagation::Waiting);
        // Completing the root releases.
        assert_eq!(t.propagate(2, 0, 1), Propagation::Release);
    }

    #[test]
    fn partial_last_groups_expect_fewer() {
        // 10 participants, fanout 4: leaves expect 4, 4, 2.
        let t = tree(10, 4);
        assert_eq!(t.levels[0], 3);
        assert_eq!(t.expected_at(0, 0), 4);
        assert_eq!(t.expected_at(0, 2), 2);
    }

    #[test]
    fn leaf_assignment_is_total() {
        let t = tree(32, 4);
        for p in 0..32 {
            let leaf = t.leaf_index(p);
            assert!(leaf < 8);
            assert_eq!(t.leaf_of(p), t.node(0, leaf));
        }
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn rejects_degenerate_fanout() {
        tree(8, 1);
    }
}
