//! # cedar-rtl — the Cedar Fortran runtime library
//!
//! State machines for the runtime protocols §2 of the paper describes:
//!
//! * **Helper tasks**: the runtime creates one helper task per non-master
//!   cluster; when scheduled, a helper "begins spin-waiting for work",
//!   checking the `sdoall_activity` word in global memory every few
//!   cycles ([`activity::WorkWaiter`]).
//! * **SDOALL/CDOALL** (hierarchical): outer iterations are
//!   self-scheduled one at a time to each cluster task — only one
//!   processor per cluster touches the global iteration lock — and the
//!   inner `cdoall` spreads over the cluster's 8 CEs via the concurrency
//!   bus, creating no network traffic.
//! * **XDOALL** (flat): *every* CE independently issues test-and-set
//!   requests to the lock protecting the global loop iteration index
//!   ([`sched::IterClaimer`]); this is the construct whose distribution
//!   overhead grows to >10% of completion time at 32 processors (§6).
//! * **Finish barrier**: after each loop, the main task spin-waits for
//!   all helpers which entered the loop to detach
//!   ([`barrier::FinishBarrier`] over a joined-count word maintained
//!   with fetch-and-add).
//! * **DOACROSS**: serialized regions within a parallel loop
//!   ([`doacross::DoacrossGate`]).
//!
//! Each state machine emits [`WordIssue`]s — single-word global-memory
//! operations with optional delays — that `cedar-core` turns into CE
//! activities, so every lock probe, index update and flag check travels
//! through the simulated network and contributes to the contention the
//! paper measures.
//!
//! ## Example: claiming an iteration
//!
//! ```
//! use cedar_rtl::{ClaimStep, IterClaimer, RtlWords};
//! use cedar_sim::Cycles;
//!
//! let mut claimer = IterClaimer::new(RtlWords::cedar(), 10, Cycles(150));
//! // The pre-check read goes out first...
//! let step = claimer.begin();
//! assert!(matches!(step, ClaimStep::Issue(_)));
//! // ...the index says work is left, so the TAS follows; feed the
//! // simulated memory's responses back until the claim resolves.
//! let step = claimer.on_value(0);      // pre-check: index 0 < 10
//! let step = match step { ClaimStep::Issue(_) => claimer.on_value(0), s => s }; // TAS won
//! let step = match step { ClaimStep::Issue(_) => claimer.on_value(0), s => s }; // fetched 0
//! let step = match step { ClaimStep::Issue(_) => claimer.on_value(0), s => s }; // unset done
//! assert_eq!(step, ClaimStep::Claimed(0));
//! ```

pub mod activity;
pub mod barrier;
pub mod combining;
pub mod config;
pub mod doacross;
pub mod loops;
pub mod sched;
pub mod words;

pub use activity::{WaitStep, WorkWaiter};
pub use barrier::{BarrierStep, FinishBarrier};
pub use combining::{CombiningTree, Propagation};
pub use config::RtlConfig;
pub use doacross::DoacrossGate;
pub use loops::{LoopDescriptor, LoopKind};
pub use sched::{ClaimStep, IterClaimer};
pub use words::RtlWords;

use cedar_hw::{GlobalAddr, MemOp};
use cedar_sim::Cycles;

/// A single-word global-memory operation requested by a runtime state
/// machine, to be issued `after` cycles from now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WordIssue {
    /// Target address.
    pub addr: GlobalAddr,
    /// Operation.
    pub op: MemOp,
    /// Delay before issuing (spin periods, lock backoff).
    pub after: Cycles,
}

impl WordIssue {
    /// An immediate issue.
    pub fn now(addr: GlobalAddr, op: MemOp) -> Self {
        WordIssue {
            addr,
            op,
            after: Cycles::ZERO,
        }
    }

    /// A delayed issue.
    pub fn after(addr: GlobalAddr, op: MemOp, delay: Cycles) -> Self {
        WordIssue {
            addr,
            op,
            after: delay,
        }
    }
}
