//! Self-scheduled iteration claiming over a lock-protected global index.
//!
//! "Each processor ... individually and independently issue test and set
//! requests to the critical section locks such as the lock protecting
//! the loop iteration index. This leads to global memory and network
//! contention, and hence, to larger amount of time being spent on
//! picking up loop iterations and in determining that no more iterations
//! are left" (§6).
//!
//! The claim protocol, one global-memory round trip per step:
//!
//! 1. `Read(index)` — the lock-free pre-check ("test before
//!    test-and-set"): if the index already equals the trip count, the
//!    loop is exhausted and the lock is never touched — so the
//!    end-of-loop discovery storm reads in parallel instead of
//!    serializing on the lock;
//! 2. `TestAndSet(lock)` — retried with backoff while the lock is held;
//! 3. `FetchAdd(index, +1)` — claim the next iteration number in one
//!    atomic round trip (the global-memory modules execute
//!    read-modify-write operations locally, so the lock is held for a
//!    single round trip rather than a read/write pair);
//! 4. `Unset(lock)` — release.
//!
//! After step 4 the claimer holds the fetched iteration number, or has
//! determined the loop is exhausted (a fetch past the trip count is
//! benign: the index stays past-the-end and later pre-checks short-cut).
//! For `xdoall` all N processors run this machine against one lock; for
//! `sdoall` only one processor per cluster does.

use cedar_hw::MemOp;
use cedar_sim::Cycles;

use crate::words::RtlWords;
use crate::WordIssue;

/// What the claimer wants next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClaimStep {
    /// Issue this word operation and feed the response value back into
    /// [`IterClaimer::on_value`].
    Issue(WordIssue),
    /// The claimer obtained this iteration number.
    Claimed(u32),
    /// No iterations remain; the claimer released the lock and is done.
    Exhausted,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Idle,
    WaitPreCheck,
    WaitTas,
    WaitFetch,
    WaitUnlock { result: Option<u32> },
}

/// The per-processor iteration-claim state machine.
#[derive(Debug, Clone)]
pub struct IterClaimer {
    words: RtlWords,
    total: u32,
    backoff: Cycles,
    state: State,
    tas_attempts: u64,
    tas_failures: u64,
    claims: u64,
}

impl IterClaimer {
    /// Creates a claimer for a loop of `total` iterations coordinated
    /// through `words`, with `backoff` between failed lock attempts.
    pub fn new(words: RtlWords, total: u32, backoff: Cycles) -> Self {
        IterClaimer {
            words,
            total,
            backoff,
            state: State::Idle,
            tas_attempts: 0,
            tas_failures: 0,
            claims: 0,
        }
    }

    /// Begins a claim attempt.
    ///
    /// # Panics
    ///
    /// Panics if a claim is already in progress.
    pub fn begin(&mut self) -> ClaimStep {
        assert_eq!(self.state, State::Idle, "claim already in progress");
        self.state = State::WaitPreCheck;
        ClaimStep::Issue(WordIssue::now(self.words.index, MemOp::Read))
    }

    /// Feeds the value of the previously issued operation back in.
    ///
    /// # Panics
    ///
    /// Panics if no operation is outstanding.
    pub fn on_value(&mut self, value: u64) -> ClaimStep {
        match self.state {
            State::Idle => panic!("on_value with no claim in progress"),
            State::WaitPreCheck => {
                if value as u32 >= self.total {
                    // Exhausted: discovered without touching the lock.
                    self.state = State::Idle;
                    return ClaimStep::Exhausted;
                }
                self.state = State::WaitTas;
                self.tas_attempts += 1;
                ClaimStep::Issue(WordIssue::now(self.words.lock, MemOp::TestAndSet))
            }
            State::WaitTas => {
                if value != 0 {
                    // Lock held: back off, then retry the test-and-set.
                    self.tas_failures += 1;
                    self.tas_attempts += 1;
                    ClaimStep::Issue(WordIssue::after(
                        self.words.lock,
                        MemOp::TestAndSet,
                        self.backoff,
                    ))
                } else {
                    self.state = State::WaitFetch;
                    ClaimStep::Issue(WordIssue::now(self.words.index, MemOp::FetchAdd(1)))
                }
            }
            State::WaitFetch => {
                let fetched = value as u32;
                let result = if fetched >= self.total {
                    // Raced past the end since the pre-check: release
                    // and report exhaustion.
                    None
                } else {
                    Some(fetched)
                };
                self.state = State::WaitUnlock { result };
                ClaimStep::Issue(WordIssue::now(self.words.lock, MemOp::Unset))
            }
            State::WaitUnlock { result } => {
                self.state = State::Idle;
                match result {
                    Some(i) => {
                        self.claims += 1;
                        ClaimStep::Claimed(i)
                    }
                    None => ClaimStep::Exhausted,
                }
            }
        }
    }

    /// `true` when no claim is in progress.
    pub fn is_idle(&self) -> bool {
        self.state == State::Idle
    }

    /// Test-and-set packets issued (successful + failed).
    pub fn tas_attempts(&self) -> u64 {
        self.tas_attempts
    }

    /// Failed test-and-set attempts (lock was held).
    pub fn tas_failures(&self) -> u64 {
        self.tas_failures
    }

    /// Iterations successfully claimed.
    pub fn claims(&self) -> u64 {
        self.claims
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::words::RtlWords;

    fn claimer(total: u32) -> IterClaimer {
        IterClaimer::new(RtlWords::cedar(), total, Cycles(30))
    }

    /// Drives a claimer against an in-memory lock/index pair, returning
    /// the outcome of one claim attempt.
    fn drive(c: &mut IterClaimer, lock: &mut u64, index: &mut u64) -> ClaimStep {
        let w = RtlWords::cedar();
        let mut step = c.begin();
        loop {
            match step {
                ClaimStep::Issue(issue) => {
                    let value = if issue.addr == w.lock {
                        match issue.op {
                            MemOp::TestAndSet => {
                                let old = *lock;
                                *lock = 1;
                                old
                            }
                            MemOp::Unset => {
                                *lock = 0;
                                0
                            }
                            _ => panic!("unexpected lock op"),
                        }
                    } else if issue.addr == w.index {
                        match issue.op {
                            MemOp::Read => *index,
                            MemOp::FetchAdd(d) => {
                                let old = *index;
                                *index = index.wrapping_add_signed(d);
                                old
                            }
                            _ => panic!("unexpected index op"),
                        }
                    } else {
                        panic!("unexpected address");
                    };
                    step = c.on_value(value);
                }
                done => return done,
            }
        }
    }

    #[test]
    fn claims_iterations_in_order_then_exhausts() {
        let mut c = claimer(3);
        let (mut lock, mut index) = (0u64, 0u64);
        assert_eq!(drive(&mut c, &mut lock, &mut index), ClaimStep::Claimed(0));
        assert_eq!(drive(&mut c, &mut lock, &mut index), ClaimStep::Claimed(1));
        assert_eq!(drive(&mut c, &mut lock, &mut index), ClaimStep::Claimed(2));
        assert_eq!(drive(&mut c, &mut lock, &mut index), ClaimStep::Exhausted);
        assert_eq!(c.claims(), 3);
        assert_eq!(lock, 0, "lock released after exhaustion");
    }

    #[test]
    fn held_lock_causes_backoff_retry() {
        let mut c = claimer(5);
        let step = c.begin();
        assert!(matches!(step, ClaimStep::Issue(i) if i.op == MemOp::Read));
        // Pre-check sees work left; the TAS goes out...
        let step = c.on_value(0);
        assert!(matches!(step, ClaimStep::Issue(i) if i.op == MemOp::TestAndSet));
        // ...but the lock is held (TAS returns 1): expect a delayed retry.
        match c.on_value(1) {
            ClaimStep::Issue(i) => {
                assert_eq!(i.op, MemOp::TestAndSet);
                assert_eq!(i.after, Cycles(30), "backoff passed through");
            }
            other => panic!("expected retry, got {other:?}"),
        }
        assert_eq!(c.tas_failures(), 1);
        assert_eq!(c.tas_attempts(), 2);
        // Now the lock is free: the claim proceeds to the index fetch.
        match c.on_value(0) {
            ClaimStep::Issue(i) => assert_eq!(i.op, MemOp::FetchAdd(1)),
            other => panic!("expected index fetch, got {other:?}"),
        }
    }

    #[test]
    fn exhaustion_skips_index_write() {
        let mut c = claimer(2);
        let (mut lock, mut index) = (0u64, 2u64); // already exhausted
        assert_eq!(drive(&mut c, &mut lock, &mut index), ClaimStep::Exhausted);
        assert_eq!(index, 2, "index not advanced past total");
        assert_eq!(lock, 0, "pre-check never touched the lock");
        assert_eq!(c.tas_attempts(), 0, "exhaustion discovered lock-free");
    }

    #[test]
    fn race_after_pre_check_releases_without_claim() {
        // Pre-check sees work left, but by the time the lock is held a
        // racing claimer has exhausted the loop: the index re-read under
        // the lock says so and the claimer unsets and reports Exhausted.
        let mut c = claimer(4);
        assert!(matches!(c.begin(), ClaimStep::Issue(i) if i.op == MemOp::Read));
        let step = c.on_value(3); // pre-check: 3 < 4, keep going
        assert!(matches!(step, ClaimStep::Issue(i) if i.op == MemOp::TestAndSet));
        let step = c.on_value(0); // lock acquired
        assert!(matches!(step, ClaimStep::Issue(i) if i.op == MemOp::FetchAdd(1)));
        let step = c.on_value(4); // raced: fetched past the end
        assert!(matches!(step, ClaimStep::Issue(i) if i.op == MemOp::Unset));
        assert_eq!(c.on_value(0), ClaimStep::Exhausted);
    }

    #[test]
    fn two_claimers_interleaved_respect_mutual_exclusion() {
        // Claimer A holds the lock; claimer B's TAS must fail until A's
        // Unset lands.
        let w = RtlWords::cedar();
        let mut a = claimer(10);
        let mut b = claimer(10);
        let mut lock = 0u64;
        // A pre-checks, then acquires.
        a.begin();
        a.on_value(0); // pre-check: work left
        let old = lock;
        lock = 1;
        let step_a = a.on_value(old); // A proceeds to index read
        assert!(matches!(step_a, ClaimStep::Issue(i) if i.addr == w.index));
        // B pre-checks and tries while A holds.
        b.begin();
        b.on_value(0);
        let old_b = lock;
        assert!(matches!(
            b.on_value(old_b),
            ClaimStep::Issue(i) if i.op == MemOp::TestAndSet && i.after > Cycles::ZERO
        ));
    }

    #[test]
    #[should_panic(expected = "claim already in progress")]
    fn double_begin_panics() {
        let mut c = claimer(1);
        c.begin();
        c.begin();
    }

    #[test]
    fn zero_iteration_loop_exhausts_immediately() {
        let mut c = claimer(0);
        let (mut lock, mut index) = (0u64, 0u64);
        assert_eq!(drive(&mut c, &mut lock, &mut index), ClaimStep::Exhausted);
        assert_eq!(c.claims(), 0);
    }
}
