//! Property tests: the iteration-claim protocol keeps its promises under
//! arbitrary interleavings of competing claimers.
//!
//! A tiny shared-memory referee executes the word operations the
//! claimers emit, one at a time in a randomly chosen order (fixed-seed
//! `SplitMix64`, so every interleaving is reproducible). Whatever the
//! interleaving, every iteration must be claimed exactly once and the
//! lock must never be held by two claimers.

use cedar_hw::MemOp;
use cedar_rtl::{ClaimStep, IterClaimer, RtlWords};
use cedar_sim::{Cycles, SplitMix64};

/// Shared "memory" for lock and index words.
struct Referee {
    lock: u64,
    index: u64,
    holder: Option<usize>,
}

impl Referee {
    fn apply(&mut self, who: usize, op: MemOp, is_lock: bool) -> u64 {
        if is_lock {
            match op {
                MemOp::TestAndSet => {
                    let old = self.lock;
                    self.lock = 1;
                    if old == 0 {
                        assert!(self.holder.is_none(), "two lock holders!");
                        self.holder = Some(who);
                    }
                    old
                }
                MemOp::Unset => {
                    assert_eq!(self.holder, Some(who), "unset by non-holder");
                    self.holder = None;
                    self.lock = 0;
                    0
                }
                MemOp::Read => self.lock,
                _ => panic!("unexpected lock op {op:?}"),
            }
        } else {
            match op {
                MemOp::Read => self.index,
                MemOp::FetchAdd(d) => {
                    // The index is only mutated under the lock.
                    assert_eq!(self.holder, Some(who), "index fetch outside the lock");
                    let old = self.index;
                    self.index = self.index.wrapping_add_signed(d);
                    old
                }
                _ => panic!("unexpected index op {op:?}"),
            }
        }
    }
}

/// One claimer plus its pending operation.
struct Driver {
    claimer: IterClaimer,
    pending: Option<(bool, MemOp)>, // (targets lock?, op)
    claimed: Vec<u32>,
    done: bool,
}

impl Driver {
    fn new(total: u32) -> Self {
        let mut claimer = IterClaimer::new(RtlWords::cedar(), total, Cycles(1));
        let step = claimer.begin();
        let mut d = Driver {
            claimer,
            pending: None,
            claimed: Vec::new(),
            done: false,
        };
        d.absorb(step);
        d
    }

    fn absorb(&mut self, step: ClaimStep) {
        let w = RtlWords::cedar();
        match step {
            ClaimStep::Issue(wi) => {
                self.pending = Some((wi.addr == w.lock, wi.op));
            }
            ClaimStep::Claimed(i) => {
                self.claimed.push(i);
                let next = self.claimer.begin();
                self.absorb(next);
            }
            ClaimStep::Exhausted => {
                self.done = true;
                self.pending = None;
            }
        }
    }

    /// Executes this driver's pending operation against the referee.
    fn step(&mut self, who: usize, referee: &mut Referee) {
        if let Some((is_lock, op)) = self.pending.take() {
            let value = referee.apply(who, op, is_lock);
            let next = self.claimer.on_value(value);
            self.absorb(next);
        }
    }
}

#[test]
fn every_iteration_claimed_exactly_once() {
    for seed in 0..48u64 {
        let mut rng = SplitMix64::new(0xE000 + seed);
        let n_claimers = rng.next_range(2, 5) as usize;
        let total = rng.next_range(1, 23) as u32;
        let schedule: Vec<usize> = (0..rng.next_below(600))
            .map(|_| rng.next_below(6) as usize)
            .collect();

        let mut referee = Referee {
            lock: 0,
            index: 0,
            holder: None,
        };
        let mut drivers: Vec<Driver> = (0..n_claimers).map(|_| Driver::new(total)).collect();

        // Drive the randomly chosen interleaving, then round-robin until
        // everyone exhausts.
        for &pick in &schedule {
            let who = pick % n_claimers;
            drivers[who].step(who, &mut referee);
        }
        let mut guard = 0;
        while drivers.iter().any(|d| !d.done) {
            for (who, driver) in drivers.iter_mut().enumerate() {
                driver.step(who, &mut referee);
            }
            guard += 1;
            assert!(guard < 10_000, "seed {seed}: protocol wedged");
        }

        // Exactly-once coverage.
        let mut all: Vec<u32> = drivers.iter().flat_map(|d| d.claimed.clone()).collect();
        all.sort_unstable();
        let expected: Vec<u32> = (0..total).collect();
        assert_eq!(all, expected, "seed {seed}");
        // Lock released at the end.
        assert_eq!(referee.lock, 0, "seed {seed}");
        assert!(referee.holder.is_none(), "seed {seed}");
    }
}

#[test]
fn single_claimer_claims_in_ascending_order() {
    for total in 1u32..50 {
        let mut referee = Referee {
            lock: 0,
            index: 0,
            holder: None,
        };
        let mut d = Driver::new(total);
        let mut guard = 0;
        while !d.done {
            d.step(0, &mut referee);
            guard += 1;
            assert!(guard < 10_000);
        }
        let expected: Vec<u32> = (0..total).collect();
        assert_eq!(d.claimed, expected);
    }
}
