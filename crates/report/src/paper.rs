//! The paper's published numbers, as data.
//!
//! Transcribed from Tables 1, 3 and 4 of Natarajan, Sharma & Iyer
//! (ISCA 1994) so that reproduction quality can be rendered — and
//! asserted — side by side with the simulator's output.

use cedar_core::methodology::{contention_overhead, parallel_loop_concurrency};
use cedar_core::suite::SuiteResult;
use cedar_hw::Configuration;

use crate::table::{fnum, TextTable};

/// One application's published Table 1 row set.
#[derive(Debug, Clone, Copy)]
pub struct PaperTable1 {
    /// Application name.
    pub app: &'static str,
    /// Completion times in seconds, 1/4/8/16/32 processors.
    pub ct: [f64; 5],
    /// Speedups, 4/8/16/32 processors.
    pub speedup: [f64; 4],
    /// Average concurrency, 4/8/16/32 processors.
    pub concurrency: [f64; 4],
}

/// Table 1 as published.
pub const TABLE1: [PaperTable1; 5] = [
    PaperTable1 {
        app: "FLO52",
        ct: [613.0, 214.0, 145.0, 96.0, 73.0],
        speedup: [2.86, 4.23, 6.39, 8.40],
        concurrency: [3.49, 6.11, 9.66, 14.82],
    },
    PaperTable1 {
        app: "ARC2D",
        ct: [2139.0, 593.0, 342.0, 203.0, 142.0],
        speedup: [3.61, 6.25, 10.54, 15.06],
        concurrency: [3.70, 6.82, 12.28, 20.56],
    },
    PaperTable1 {
        app: "MDG",
        ct: [4935.0, 1260.0, 663.0, 346.0, 202.0],
        speedup: [3.89, 7.44, 14.26, 24.43],
        concurrency: [3.92, 7.60, 15.14, 28.82],
    },
    PaperTable1 {
        app: "OCEAN",
        ct: [2726.0, 711.0, 381.0, 230.0, 175.0],
        speedup: [3.83, 7.16, 11.85, 15.58],
        concurrency: [3.86, 7.53, 12.98, 17.27],
    },
    PaperTable1 {
        app: "ADM",
        ct: [707.0, 208.0, 121.0, 83.0, 80.0],
        speedup: [3.40, 5.84, 8.52, 8.84],
        concurrency: [3.46, 6.06, 9.42, 13.56],
    },
];

/// Table 4's published contention overheads (`Ov_cont`, %), 4/8/16/32
/// processors.
pub const TABLE4_OV: [(&str, [f64; 4]); 5] = [
    ("FLO52", [17.0, 27.0, 24.0, 21.0]),
    ("ARC2D", [3.4, 8.8, 10.3, 14.1]),
    ("MDG", [1.3, 4.1, 7.2, 13.4]),
    ("OCEAN", [3.5, 6.3, 8.0, 7.4]),
    ("ADM", [1.9, 4.1, 5.9, 12.5]),
];

/// Table 3's published main-task parallel-loop concurrency at 32p.
pub const TABLE3_MAIN_32P: [(&str, f64); 5] = [
    ("FLO52", 6.85),
    ("ARC2D", 7.62),
    ("MDG", 7.98),
    ("OCEAN", 5.74),
    ("ADM", 5.89),
];

/// The multi-processor configurations, in table-column order.
const MULTI: [Configuration; 4] = [
    Configuration::P4,
    Configuration::P8,
    Configuration::P16,
    Configuration::P32,
];

/// Side-by-side speedups: paper vs measured.
pub fn speedup_comparison(suite: &SuiteResult) -> String {
    let mut t = TextTable::new(vec![
        "Program", "source", "4 proc", "8 proc", "16 proc", "32 proc",
    ]);
    for p in TABLE1 {
        let app = suite.app(p.app);
        let base = app.baseline();
        let mut paper = vec![p.app.to_string(), "paper".into()];
        let mut ours = vec!["".to_string(), "measured".into()];
        for (i, c) in MULTI.into_iter().enumerate() {
            paper.push(fnum(p.speedup[i], 2));
            ours.push(fnum(app.run(c).speedup_over(base), 2));
        }
        t.row(paper);
        t.row(ours);
        t.separator();
    }
    format!("Speedups: paper vs measured\n{}", t.render())
}

/// Side-by-side average concurrency: paper vs measured.
pub fn concurrency_comparison(suite: &SuiteResult) -> String {
    let mut t = TextTable::new(vec![
        "Program", "source", "4 proc", "8 proc", "16 proc", "32 proc",
    ]);
    for p in TABLE1 {
        let app = suite.app(p.app);
        let mut paper = vec![p.app.to_string(), "paper".into()];
        let mut ours = vec!["".to_string(), "measured".into()];
        for (i, c) in MULTI.into_iter().enumerate() {
            paper.push(fnum(p.concurrency[i], 2));
            ours.push(fnum(app.run(c).total_concurrency(), 2));
        }
        t.row(paper);
        t.row(ours);
        t.separator();
    }
    format!("Average concurrency: paper vs measured\n{}", t.render())
}

/// Side-by-side contention overheads (Table 4): paper vs measured.
pub fn contention_comparison(suite: &SuiteResult) -> String {
    let mut t = TextTable::new(vec![
        "Program", "source", "4 proc", "8 proc", "16 proc", "32 proc",
    ]);
    for (name, ov) in TABLE4_OV {
        let app = suite.app(name);
        let base = app.baseline();
        let mut paper = vec![name.to_string(), "paper".into()];
        let mut ours = vec!["".to_string(), "measured".into()];
        for (i, c) in MULTI.into_iter().enumerate() {
            paper.push(fnum(ov[i], 1));
            ours.push(fnum(contention_overhead(base, app.run(c)).overhead_pct, 1));
        }
        t.row(paper);
        t.row(ours);
        t.separator();
    }
    format!(
        "GM & network contention overhead (% of CT): paper vs measured\n{}",
        t.render()
    )
}

/// Side-by-side Table 3 main-task parallel-loop concurrency at 32p.
pub fn table3_comparison(suite: &SuiteResult) -> String {
    let mut t = TextTable::new(vec!["Program", "paper 32p", "measured 32p"]);
    for (name, paper) in TABLE3_MAIN_32P {
        let cc = parallel_loop_concurrency(suite.app(name).run(Configuration::P32));
        t.row(vec![
            name.to_string(),
            fnum(paper, 2),
            fnum(cc[0].par_concurr, 2),
        ]);
    }
    format!(
        "Main-task parallel-loop concurrency at 32p: paper vs measured\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants_are_internally_consistent() {
        for p in TABLE1 {
            // Speedup columns must match CT ratios (the paper's own data).
            for (i, s) in p.speedup.iter().enumerate() {
                let from_ct = p.ct[0] / p.ct[i + 1];
                assert!(
                    (from_ct - s).abs() / s < 0.02,
                    "{}: speedup {} vs CT ratio {}",
                    p.app,
                    s,
                    from_ct
                );
            }
            // §3.1 result 2: speedup below concurrency, in the paper too.
            for (s, c) in p.speedup.iter().zip(p.concurrency.iter()) {
                assert!(s < c, "{}: paper speedup must be below concurrency", p.app);
            }
        }
    }

    #[test]
    fn paper_contention_peaks_for_flo52() {
        let flo = TABLE4_OV[0].1;
        assert_eq!(TABLE4_OV[0].0, "FLO52");
        assert!(flo[1] > flo[0] && flo[1] > flo[3], "peaked at 8p");
        for (name, ov) in &TABLE4_OV[1..] {
            assert!(
                flo[3] > ov[3] || *name == "ARC2D",
                "FLO52 leads at 32p (ARC2D comes close)"
            );
        }
    }
}
