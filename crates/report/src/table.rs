//! Aligned text tables.

use std::fmt::Write as _;

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (labels).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple monospace table builder.
///
/// # Example
///
/// ```
/// use cedar_report::TextTable;
///
/// let mut t = TextTable::new(vec!["Program", "CT (s)"]);
/// t.row(vec!["FLO52".into(), "613".into()]);
/// let s = t.render();
/// assert!(s.contains("FLO52"));
/// assert!(s.contains("CT (s)"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    aligns: Vec<Align>,
}

impl TextTable {
    /// Creates a table with the given column headers. The first column
    /// is left-aligned, the rest right-aligned (the common numeric
    /// layout); override with [`aligns`](Self::aligns).
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        let header: Vec<String> = header.into_iter().map(Into::into).collect();
        let aligns = (0..header.len())
            .map(|i| if i == 0 { Align::Left } else { Align::Right })
            .collect();
        TextTable {
            header,
            rows: Vec::new(),
            aligns,
        }
    }

    /// Overrides column alignments.
    ///
    /// # Panics
    ///
    /// Panics if the count does not match the header.
    pub fn aligns(mut self, aligns: Vec<Align>) -> Self {
        assert_eq!(aligns.len(), self.header.len(), "one align per column");
        self.aligns = aligns;
        self
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "one cell per column");
        self.rows.push(cells);
    }

    /// Appends a horizontal separator row.
    pub fn separator(&mut self) {
        self.rows.push(Vec::new());
    }

    /// Number of data rows (separators excluded).
    pub fn n_rows(&self) -> usize {
        self.rows.iter().filter(|r| !r.is_empty()).count()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let n = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in self.rows.iter().filter(|r| !r.is_empty()) {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let sep_len: usize = widths.iter().sum::<usize>() + 3 * (n - 1);
        let mut out = String::new();
        self.render_row(&mut out, &self.header, &widths);
        let _ = writeln!(out, "{}", "-".repeat(sep_len));
        for row in &self.rows {
            if row.is_empty() {
                let _ = writeln!(out, "{}", "-".repeat(sep_len));
            } else {
                self.render_row(&mut out, row, &widths);
            }
        }
        out
    }

    fn render_row(&self, out: &mut String, cells: &[String], widths: &[usize]) {
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                out.push_str(" | ");
            }
            match self.aligns[i] {
                Align::Left => {
                    let _ = write!(out, "{:<width$}", cell, width = widths[i]);
                }
                Align::Right => {
                    let _ = write!(out, "{:>width$}", cell, width = widths[i]);
                }
            }
        }
        out.push('\n');
    }
}

/// Formats a float with `digits` decimal places.
pub fn fnum(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["a", "value"]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines same width.
        let w = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == w));
        // Numbers right-aligned: "22" ends the last line.
        assert!(lines[3].ends_with("22"));
    }

    #[test]
    fn separator_rows() {
        let mut t = TextTable::new(vec!["a"]);
        t.row(vec!["1".into()]);
        t.separator();
        t.row(vec!["2".into()]);
        assert_eq!(t.n_rows(), 2);
        assert_eq!(t.render().lines().count(), 5);
    }

    #[test]
    #[should_panic(expected = "one cell per column")]
    fn wrong_arity_rejected() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only one".into()]);
    }

    #[test]
    fn fnum_formats() {
        assert_eq!(fnum(1.23456, 2), "1.23");
        assert_eq!(fnum(10.0, 0), "10");
    }
}
