//! The paper's figures, rendered as text bar charts.

use std::fmt::Write as _;

use cedar_core::result::RunResult;
use cedar_core::suite::{AppResults, SuiteResult};
use cedar_trace::UserBucket;
use cedar_xylem::accounting::Category;

use crate::table::fnum;

/// Figure 3: completion-time breakdown into user / system / interrupt /
/// spin on the main cluster, one block per application.
pub fn figure3(suite: &SuiteResult) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 3: Completion Time Breakdown on Different Cedar Configurations"
    );
    for app in &suite.apps {
        let _ = writeln!(out, "\n[{}]", app.app);
        for r in &app.runs {
            let c = r.configuration;
            let user = r.os_category_fraction(Category::User) * 100.0;
            let sys = r.os_category_fraction(Category::System) * 100.0;
            let intr = r.os_category_fraction(Category::Interrupt) * 100.0;
            let spin = r.os_category_fraction(Category::Spin) * 100.0;
            let _ = writeln!(
                out,
                "  {:>7}  CT={:>9}s  user={:>5}% system={:>5}% interrupt={:>4}% spin={:>5}%  {}",
                c.label(),
                fnum(r.ct_seconds(), 4),
                fnum(user, 1),
                fnum(sys, 1),
                fnum(intr, 1),
                fnum(spin, 2),
                bar(&[(user, '#'), (sys, 'S'), (intr, 'I'), (spin, '*')]),
            );
        }
    }
    out
}

/// One application's user-time breakdown (Figures 5–9): the main task's
/// bar for every configuration plus helper-task bars on multi-cluster
/// configurations. Quantities are percentages of the completion time;
/// below-the-line buckets (iterations, serial code, cluster-only loops)
/// come first, parallelization overheads after the `||` divider.
pub fn user_breakdown(app: &AppResults) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "User Time Breakdown for {}", app.app);
    let _ = writeln!(
        out,
        "  (below line: iters/serial/cluster-loops || above line: setup/pickup/barrier/helper-wait)"
    );
    for r in &app.runs {
        let _ = writeln!(out, "  {:>7}:", r.configuration.label());
        write_task_bar(&mut out, "main", r, 0);
        for h in 1..r.breakdowns.len() {
            write_task_bar(&mut out, &format!("hlp{h}"), r, h);
        }
    }
    out
}

fn write_task_bar(out: &mut String, name: &str, r: &RunResult, task: usize) {
    let ct = r.completion_time;
    let b = &r.breakdowns[task];
    let pct = |bucket: UserBucket| b.fraction(bucket, ct) * 100.0;
    let below = pct(UserBucket::IterExec)
        + pct(UserBucket::Serial)
        + pct(UserBucket::ClusterLoop)
        + pct(UserBucket::ClusterSync);
    let above: f64 = UserBucket::ALL
        .iter()
        .filter(|u| u.is_parallelization_overhead())
        .map(|u| pct(*u))
        .sum();
    let _ = writeln!(
        out,
        "    {:>5} user={:>6}s  iter={:>5}% serial={:>5}% clus={:>5}% sync={:>4}% || setup={:>4}% \
         pickS={:>4}% pickX={:>4}% barrier={:>5}% hwait={:>5}%   {}",
        name,
        fnum(b.total().as_secs(), 4),
        fnum(pct(UserBucket::IterExec), 1),
        fnum(pct(UserBucket::Serial), 1),
        fnum(pct(UserBucket::ClusterLoop), 1),
        fnum(pct(UserBucket::ClusterSync), 1),
        fnum(pct(UserBucket::LoopSetup), 1),
        fnum(pct(UserBucket::PickupSdoall), 1),
        fnum(pct(UserBucket::PickupXdoall), 1),
        fnum(pct(UserBucket::BarrierWait), 1),
        fnum(pct(UserBucket::HelperWait), 1),
        bar(&[(below, '#'), (above, '^')]),
    );
}

/// Figures 5–9 for the whole suite, in the paper's order.
pub fn figures5to9(suite: &SuiteResult) -> String {
    let order = ["FLO52", "MDG", "ARC2D", "OCEAN", "ADM"]; // paper's figure order
    let numbers = [5, 6, 7, 8, 9];
    let mut out = String::new();
    for (n, name) in numbers.iter().zip(order.iter()) {
        if let Some(app) = suite.apps.iter().find(|a| a.app.eq_ignore_ascii_case(name)) {
            let _ = writeln!(out, "Figure {n}: {}", user_breakdown(app));
        }
    }
    out
}

/// A proportional text bar (2 columns per 5 percent).
fn bar(segments: &[(f64, char)]) -> String {
    let mut s = String::new();
    for (pct, ch) in segments {
        let n = (pct / 2.5).round().max(0.0) as usize;
        for _ in 0..n {
            s.push(*ch);
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedar_apps::synthetic;
    use cedar_hw::Configuration;

    fn mini_suite() -> SuiteResult {
        let mut a = synthetic::uniform_sdoall(1, 1, 8, 8, 300, 4);
        a.name = "FLO52";
        SuiteResult::measure(
            &[a],
            &[Configuration::P1, Configuration::P16],
            &cedar_core::RunOptions::default(),
        )
    }

    #[test]
    fn figure3_renders_all_categories() {
        let s = figure3(&mini_suite());
        assert!(s.contains("user="));
        assert!(s.contains("system="));
        assert!(s.contains("interrupt="));
        assert!(s.contains("spin="));
        assert!(s.contains("16 proc"));
    }

    #[test]
    fn user_breakdown_shows_helper_bars_on_multicluster() {
        let suite = mini_suite();
        let s = user_breakdown(&suite.apps[0]);
        assert!(s.contains("main"));
        assert!(s.contains("hlp1"), "16-proc runs have one helper");
        assert!(s.contains("barrier="));
        assert!(s.contains("hwait="));
    }

    #[test]
    fn bar_lengths_are_proportional() {
        assert_eq!(bar(&[(50.0, '#')]).len(), 20);
        assert_eq!(bar(&[(25.0, '#'), (25.0, '^')]).len(), 20);
        assert_eq!(bar(&[(0.0, '#')]).len(), 0);
    }
}
