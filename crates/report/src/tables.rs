//! The paper's tables, regenerated from a measurement campaign.

use cedar_core::methodology::{
    contention::baseline_parallel_time, contention_overhead, parallel_loop_concurrency,
};
use cedar_core::suite::SuiteResult;
use cedar_hw::Configuration;
use cedar_xylem::OsActivity;

use crate::table::{fnum, TextTable};

/// The configurations present in a campaign, in `Configuration::ALL`
/// order (reduced campaigns render reduced tables).
fn present(suite: &SuiteResult) -> Vec<Configuration> {
    Configuration::ALL
        .into_iter()
        .filter(|c| {
            suite
                .apps
                .first()
                .is_some_and(|a| a.runs.iter().any(|r| r.configuration == *c))
        })
        .collect()
}

/// Table 1: completion times, speedups and average concurrency for every
/// application on every configuration.
pub fn table1(suite: &SuiteResult) -> String {
    let configs = present(suite);
    let mut header: Vec<String> = vec!["Program".into(), "".into()];
    header.extend(configs.iter().map(|c| c.label().to_string()));
    let mut t = TextTable::new(header);
    for app in &suite.apps {
        let base = app.baseline();
        let mut ct_row = vec![app.app.to_string(), "CT (s)".into()];
        let mut sp_row = vec!["".to_string(), "Speedup".into()];
        let mut cc_row = vec!["".to_string(), "Concurr".into()];
        for &c in &configs {
            let r = app.run(c);
            ct_row.push(fnum(r.ct_seconds(), 4));
            sp_row.push(if c == Configuration::P1 {
                "-".into()
            } else {
                fnum(r.speedup_over(base), 2)
            });
            cc_row.push(if c == Configuration::P1 {
                "-".into()
            } else {
                fnum(r.total_concurrency(), 2)
            });
        }
        t.row(ct_row);
        t.row(sp_row);
        t.row(cc_row);
        t.separator();
    }
    format!(
        "Table 1: CTs, Speedups and Average Concurrency\n{}",
        t.render()
    )
}

/// Table 2: detailed OS-activity overheads on the 4-cluster Cedar for
/// FLO52, ARC2D and MDG (seconds and percent of completion time).
pub fn table2(suite: &SuiteResult) -> String {
    let apps = ["FLO52", "ARC2D", "MDG"];
    let mut header: Vec<String> = vec!["Overhead Category".into()];
    for a in apps {
        header.push(format!("{a} (s)"));
        header.push("%".into());
    }
    let mut t = TextTable::new(header);
    for activity in OsActivity::ALL {
        if activity == OsActivity::KernelSpin {
            continue; // reported via Figure 3's spin bar, as in the paper
        }
        let mut row = vec![activity.label().to_string()];
        for a in apps {
            let r = suite.app(a).run(Configuration::P32);
            let cost = r.os_activity(activity);
            row.push(fnum(cost.as_secs(), 4));
            row.push(fnum(cost.fraction_of(r.completion_time) * 100.0, 2));
        }
        t.row(row);
    }
    format!(
        "Table 2: Detailed Characterization of OS overheads (32 proc)\n{}",
        t.render()
    )
}

/// Table 3: average parallel-loop concurrency per task/cluster for every
/// multiprocessor configuration.
pub fn table3(suite: &SuiteResult) -> String {
    let mut header: Vec<String> = vec!["Config".into(), "Task".into()];
    header.extend(suite.apps.iter().map(|a| a.app.to_string()));
    let mut t = TextTable::new(header);
    for c in present(suite)
        .into_iter()
        .filter(|c| *c != Configuration::P1)
    {
        let task_names: Vec<String> = match c.clusters() {
            1 => vec!["Main".into()],
            n => {
                let mut v = vec!["Main".to_string()];
                for h in 1..n {
                    v.push(format!("helper{h}"));
                }
                v
            }
        };
        for (ti, task) in task_names.iter().enumerate() {
            let mut row = vec![
                if ti == 0 {
                    c.label().to_string()
                } else {
                    String::new()
                },
                task.clone(),
            ];
            for app in &suite.apps {
                let cc = parallel_loop_concurrency(app.run(c));
                row.push(fnum(cc[ti].par_concurr, 2));
            }
            t.row(row);
        }
        t.separator();
    }
    format!("Table 3: Average Parallel Loop Concurrency\n{}", t.render())
}

/// Table 4: actual and ideal parallel-loop times and the global-memory
/// and network contention overhead.
pub fn table4(suite: &SuiteResult) -> String {
    let configs = present(suite);
    let mut header: Vec<String> = vec!["Program".into(), "".into()];
    header.extend(configs.iter().map(|c| c.label().to_string()));
    let mut t = TextTable::new(header);
    for app in &suite.apps {
        let base = app.baseline();
        let mut act = vec![app.app.to_string(), "Tp_actual (s)".into()];
        let mut ideal = vec!["".to_string(), "Tp_ideal (s)".into()];
        let mut ov = vec!["".to_string(), "Ov_cont (%)".into()];
        for &c in &configs {
            if c == Configuration::P1 {
                act.push(fnum(baseline_parallel_time(base).as_secs(), 4));
                ideal.push("-".into());
                ov.push("-".into());
            } else {
                let est = contention_overhead(base, app.run(c));
                act.push(fnum(est.t_p_actual.as_secs(), 4));
                ideal.push(fnum(est.t_p_ideal.as_secs(), 4));
                ov.push(fnum(est.overhead_pct, 1));
            }
        }
        t.row(act);
        t.row(ideal);
        t.row(ov);
        t.separator();
    }
    format!(
        "Table 4: GM and Network Contention Overhead\n{}",
        t.render()
    )
}

/// Injected-cost counter behind each OS-activity bucket, when one
/// exists. The mapping mirrors `cedar-core`'s injection handlers: a
/// fault class charges exactly one bucket, and the machine counts the
/// cycles it added under these names.
fn injected_counter(activity: OsActivity) -> Option<&'static str> {
    match activity {
        OsActivity::Cpi => Some("faults.injected.cpi"),
        OsActivity::Ast => Some("faults.injected.ast"),
        OsActivity::PgFltSequential => Some("faults.injected.pgflt_seq"),
        OsActivity::PgFltConcurrent => Some("faults.injected.pgflt_conc"),
        OsActivity::CrSectCluster => Some("faults.injected.lock_cluster"),
        OsActivity::CrSectGlobal => Some("faults.injected.lock_global"),
        _ => None,
    }
}

/// The fault-attribution report: each Table-2 overhead bucket of a
/// faulted run against its unperturbed baseline, next to the cycles the
/// campaign says it injected there. Reading it row by row verifies the
/// attribution story: the delta of a targeted bucket tracks its
/// injected column, untargeted buckets stay near zero, and the final
/// rows show how completion time and memory-system queueing absorbed
/// the static classes (degraded network, helper stalls).
pub fn fault_report(base: &cedar_core::RunResult, faulted: &cedar_core::RunResult) -> String {
    assert_eq!(base.app, faulted.app, "compare runs of the same app");
    assert_eq!(
        base.configuration, faulted.configuration,
        "compare runs of the same configuration"
    );
    let mut t = TextTable::new(vec![
        "Overhead Category".to_string(),
        "Base (ms)".into(),
        "Faulted (ms)".into(),
        "Delta (ms)".into(),
        "Injected (ms)".into(),
    ]);
    for activity in OsActivity::ALL {
        let b = base.os.total(activity).as_millis();
        let f = faulted.os.total(activity).as_millis();
        let injected = injected_counter(activity)
            .map(|name| {
                let cycles = faulted.stats.counters.get(name);
                fnum(cedar_sim::Cycles(cycles).as_millis(), 3)
            })
            .unwrap_or_else(|| "-".into());
        t.row(vec![
            activity.label().to_string(),
            fnum(b, 3),
            fnum(f, 3),
            fnum(f - b, 3),
            injected,
        ]);
    }
    t.separator();
    let stall = faulted.stats.counters.get("faults.injected.stall");
    t.row(vec![
        "helper stall (user)".into(),
        fnum(0.0, 3),
        fnum(cedar_sim::Cycles(stall).as_millis(), 3),
        "-".into(),
        fnum(cedar_sim::Cycles(stall).as_millis(), 3),
    ]);
    t.row(vec![
        "gmem queued/pkt (cyc)".into(),
        fnum(base.gmem.mean_queued_per_packet(), 2),
        fnum(faulted.gmem.mean_queued_per_packet(), 2),
        fnum(
            faulted.gmem.mean_queued_per_packet() - base.gmem.mean_queued_per_packet(),
            2,
        ),
        "-".into(),
    ]);
    t.row(vec![
        "completion time".into(),
        fnum(base.completion_time.as_millis(), 3),
        fnum(faulted.completion_time.as_millis(), 3),
        fnum(
            faulted.completion_time.as_millis() - base.completion_time.as_millis(),
            3,
        ),
        "-".into(),
    ]);
    format!(
        "Fault Attribution: {} @ {} — injected overhead per Table-2 bucket\n{}",
        base.app,
        base.configuration.label(),
        t.render()
    )
}

/// One-line summary of a campaign's run-cache traffic, printed by the
/// cache-aware binaries after their tables.
pub fn cache_line(c: &cedar_core::CacheStats) -> String {
    let hot = if c.hot_hits + c.hot_misses > 0 {
        format!(", {} hot", c.hot_hits)
    } else {
        String::new()
    };
    format!(
        "run cache [{}]: {} hits{hot}, {} misses, {} writes, {} bypasses ({:.0}% hit rate)",
        c.mode.as_str(),
        c.hits,
        c.misses,
        c.writes,
        c.bypasses,
        c.hit_rate() * 100.0
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedar_apps::synthetic;
    use cedar_core::suite::SuiteResult;

    fn mini_suite() -> SuiteResult {
        // A tiny campaign so table rendering is fast in tests.
        let mut a = synthetic::uniform_sdoall(1, 1, 8, 8, 300, 4);
        a.name = "FLO52";
        let mut b = synthetic::uniform_xdoall(1, 1, 32, 300, 4);
        b.name = "ARC2D";
        let mut c = synthetic::uniform_sdoall(1, 1, 8, 16, 300, 0);
        c.name = "MDG";
        SuiteResult::measure(
            &[a, b, c],
            &Configuration::ALL,
            &cedar_core::RunOptions::default(),
        )
    }

    #[test]
    fn all_tables_render_with_expected_structure() {
        let suite = mini_suite();
        let t1 = table1(&suite);
        assert!(t1.contains("Table 1"));
        assert!(t1.contains("FLO52"));
        assert!(t1.contains("Speedup"));
        assert!(t1.contains("32 proc"));

        let t2 = table2(&suite);
        assert!(t2.contains("cpi"));
        assert!(t2.contains("pg flt (c)"));
        assert!(t2.contains("glbl syscall"));

        let t3 = table3(&suite);
        assert!(t3.contains("helper3"), "32-proc rows list three helpers");
        assert!(t3.contains("Main"));

        let t4 = table4(&suite);
        assert!(t4.contains("Tp_actual"));
        assert!(t4.contains("Ov_cont"));
    }

    #[test]
    fn table1_has_three_rows_per_app() {
        let suite = mini_suite();
        let t1 = table1(&suite);
        let ct_rows = t1.lines().filter(|l| l.contains("CT (s)")).count();
        assert_eq!(ct_rows, 3);
    }

    #[test]
    fn cache_line_prints_traffic() {
        let s = cache_line(&cedar_core::CacheStats {
            mode: cedar_core::CacheMode::ReadWrite,
            hits: 24,
            misses: 1,
            writes: 1,
            bypasses: 0,
            ..cedar_core::CacheStats::default()
        });
        assert!(s.contains("[rw]"));
        assert!(s.contains("24 hits"));
        assert!(!s.contains("hot"), "no hot segment without a hot tier");
        assert!(s.contains("96% hit rate"));

        let s = cache_line(&cedar_core::CacheStats {
            mode: cedar_core::CacheMode::ReadWrite,
            hits: 24,
            misses: 1,
            writes: 1,
            hot_hits: 20,
            hot_misses: 5,
            ..cedar_core::CacheStats::default()
        });
        assert!(s.contains("24 hits, 20 hot"), "{s}");
    }

    #[test]
    fn fault_report_shows_every_bucket_and_the_injected_column() {
        use cedar_core::prelude::FaultPlan;
        use cedar_core::{Experiment, SimConfig};

        let app = synthetic::uniform_sdoall(1, 2, 8, 8, 300, 4);
        let cfg = SimConfig::cedar(Configuration::P4);
        let base = Experiment::new(app.clone(), cfg.clone()).run();
        let faulted = Experiment::new(app, cfg.with_faults(FaultPlan::canonical())).run();
        let r = fault_report(&base, &faulted);
        assert!(r.contains("Fault Attribution"));
        for activity in OsActivity::ALL {
            assert!(r.contains(activity.label()), "missing {activity:?} row");
        }
        assert!(r.contains("completion time"));
        assert!(r.contains("gmem queued/pkt"));
        // Faulted CT never beats the baseline.
        assert!(faulted.completion_time >= base.completion_time);
    }
}
