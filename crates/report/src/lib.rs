//! # cedar-report — rendering the paper's tables and figures
//!
//! Formatting of [`cedar_core`] measurement campaigns into the exact
//! table and figure layouts of the paper:
//!
//! * [`tables::table1`] — completion times, speedups and average
//!   concurrency (Table 1);
//! * [`figures::figure3`] — completion-time breakdown into
//!   user/system/interrupt/spin per configuration (Figure 3 a–f);
//! * [`tables::table2`] — detailed OS-activity overheads on the
//!   4-cluster Cedar (Table 2);
//! * [`figures::user_breakdown`] — per-task user-time breakdowns
//!   (Figures 5–9);
//! * [`tables::table3`] — average parallel-loop concurrency (Table 3);
//! * [`tables::table4`] — global-memory and network contention overhead
//!   (Table 4).
//!
//! [`table::TextTable`] is the generic aligned-text backend and
//! [`csv`] provides machine-readable output for downstream plotting.
//! [`golden`] locks the rendered artifacts down with checked-in text
//! snapshots (`UPDATE_GOLDEN=1` re-records them).

pub mod csv;
pub mod figures;
pub mod golden;
pub mod paper;
pub mod table;
pub mod tables;

pub use golden::GoldenStatus;
pub use table::TextTable;
