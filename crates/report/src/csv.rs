//! Machine-readable CSV output for downstream plotting.

use std::fmt::Write as _;

use cedar_core::methodology::{contention_overhead, parallel_loop_concurrency};
use cedar_core::suite::SuiteResult;
use cedar_hw::Configuration;
use cedar_trace::UserBucket;
use cedar_xylem::accounting::Category;

/// One row per `(app, configuration)` with the headline metrics.
pub fn summary_csv(suite: &SuiteResult) -> String {
    let mut out = String::from(
        "app,config,processors,ct_cycles,speedup,concurrency,os_pct,system_pct,interrupt_pct,\
         spin_pct,par_overhead_main_pct,contention_pct\n",
    );
    for app in &suite.apps {
        let base = app.baseline();
        for r in &app.runs {
            let c = r.configuration;
            let cont = if c == Configuration::P1 {
                0.0
            } else {
                contention_overhead(base, r).overhead_pct
            };
            let _ = writeln!(
                out,
                "{},{},{},{},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4}",
                app.app,
                c.label().replace(' ', ""),
                c.total_ces(),
                r.completion_time.0,
                r.speedup_over(base),
                r.total_concurrency(),
                r.os_overhead_fraction() * 100.0,
                r.os_category_fraction(Category::System) * 100.0,
                r.os_category_fraction(Category::Interrupt) * 100.0,
                r.os_category_fraction(Category::Spin) * 100.0,
                r.main_parallelization_fraction() * 100.0,
                cont,
            );
        }
    }
    out
}

/// One row per `(app, configuration, task, bucket)` — the raw material of
/// Figures 5–9.
pub fn breakdown_csv(suite: &SuiteResult) -> String {
    let mut out = String::from("app,config,task,bucket,cycles,pct_of_ct\n");
    for app in &suite.apps {
        for r in &app.runs {
            let c = r.configuration;
            for (task, b) in r.breakdowns.iter().enumerate() {
                let task_name = if task == 0 {
                    "main".to_string()
                } else {
                    format!("helper{task}")
                };
                for bucket in UserBucket::ALL {
                    let v = b.get(bucket);
                    let _ = writeln!(
                        out,
                        "{},{},{},{},{},{:.4}",
                        app.app,
                        c.label().replace(' ', ""),
                        task_name,
                        bucket.label().replace(' ', "_"),
                        v.0,
                        v.fraction_of(r.completion_time) * 100.0,
                    );
                }
            }
        }
    }
    out
}

/// One row per `(app, configuration, cluster)` with Table 3's quantities.
pub fn concurrency_csv(suite: &SuiteResult) -> String {
    let mut out = String::from("app,config,cluster,pf,avg_concurr,par_concurr\n");
    for app in &suite.apps {
        for r in &app.runs {
            let c = r.configuration;
            if c == Configuration::P1 {
                continue;
            }
            for (cl, cc) in parallel_loop_concurrency(r).iter().enumerate() {
                let _ = writeln!(
                    out,
                    "{},{},{},{:.4},{:.4},{:.4}",
                    app.app,
                    c.label().replace(' ', ""),
                    cl,
                    cc.pf,
                    cc.avg_concurr,
                    cc.par_concurr,
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedar_apps::synthetic;

    fn mini_suite() -> SuiteResult {
        let mut a = synthetic::uniform_xdoall(1, 1, 16, 300, 4);
        a.name = "T";
        SuiteResult::measure(
            &[a],
            &[Configuration::P1, Configuration::P8],
            &cedar_core::RunOptions::default(),
        )
    }

    #[test]
    fn summary_csv_has_one_row_per_run() {
        let csv = summary_csv(&mini_suite());
        assert_eq!(csv.lines().count(), 1 + 2);
        assert!(csv.starts_with("app,config"));
        assert!(csv.contains("T,1proc,1,"));
    }

    #[test]
    fn breakdown_csv_covers_all_buckets() {
        let csv = breakdown_csv(&mini_suite());
        for b in UserBucket::ALL {
            assert!(
                csv.contains(&b.label().replace(' ', "_")),
                "missing bucket {b:?}"
            );
        }
    }

    #[test]
    fn concurrency_csv_skips_single_processor() {
        let csv = concurrency_csv(&mini_suite());
        assert!(!csv.contains(",1proc,"));
        assert!(csv.contains(",8proc,"));
    }
}
