//! Golden-snapshot checking for the paper's rendered artifacts.
//!
//! A golden test renders a table or figure from a deterministic
//! campaign, then compares the text byte-for-byte against a checked-in
//! snapshot. Any change to the simulator that moves a published number
//! shows up as a readable diff; intentional changes are re-recorded by
//! re-running the test with `UPDATE_GOLDEN=1`, which rewrites the
//! snapshot file instead of failing.

use std::fmt::Write as _;
use std::path::Path;

use cedar_core::CedarError;

/// Outcome of one snapshot comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GoldenStatus {
    /// The rendering matches the checked-in snapshot.
    Match,
    /// `UPDATE_GOLDEN=1` was set and the snapshot file was (re)written.
    Updated,
    /// The snapshot file does not exist (and update mode is off).
    Missing,
    /// The rendering differs from the snapshot.
    Mismatch {
        /// A unified-style line diff of snapshot vs. rendering.
        diff: String,
    },
}

/// True when the caller asked for snapshots to be re-recorded.
pub fn update_mode() -> bool {
    std::env::var("UPDATE_GOLDEN")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Compares `actual` against the snapshot at `path`, honouring
/// [`update_mode`]. Filesystem failures surface as
/// [`CedarError::Internal`] with the path in the message.
pub fn check(path: &Path, actual: &str) -> Result<GoldenStatus, CedarError> {
    let io_err =
        |e: std::io::Error| CedarError::Internal(format!("golden {}: {e}", path.display()));
    if update_mode() {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).map_err(io_err)?;
        }
        std::fs::write(path, actual).map_err(io_err)?;
        return Ok(GoldenStatus::Updated);
    }
    let expected = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(GoldenStatus::Missing),
        Err(e) => return Err(io_err(e)),
    };
    if expected == actual {
        Ok(GoldenStatus::Match)
    } else {
        Ok(GoldenStatus::Mismatch {
            diff: line_diff(&expected, actual),
        })
    }
}

/// Asserts that `actual` matches the snapshot at `path`, with a
/// diff-bearing panic message on mismatch and a pointer to
/// `UPDATE_GOLDEN=1` on a missing snapshot. Intended for use inside
/// `#[test]` functions.
pub fn assert_matches(path: &Path, actual: &str) {
    match check(path, actual).expect("golden snapshot I/O") {
        GoldenStatus::Match => {}
        GoldenStatus::Updated => {
            eprintln!("golden: updated {}", path.display());
        }
        GoldenStatus::Missing => panic!(
            "golden snapshot {} is missing — record it with UPDATE_GOLDEN=1",
            path.display()
        ),
        GoldenStatus::Mismatch { diff } => panic!(
            "golden snapshot {} differs from the rendering \
             (UPDATE_GOLDEN=1 re-records it if the change is intended):\n{diff}",
            path.display()
        ),
    }
}

/// A minimal line-level diff: common prefix/suffix trimmed, the
/// differing middle shown as `-expected` / `+actual` lines with one line
/// of context. Not a general diff algorithm, but campaign renderings
/// change in localized blocks, which this presents readably.
pub fn line_diff(expected: &str, actual: &str) -> String {
    let e: Vec<&str> = expected.lines().collect();
    let a: Vec<&str> = actual.lines().collect();
    let mut head = 0;
    while head < e.len() && head < a.len() && e[head] == a[head] {
        head += 1;
    }
    let mut tail = 0;
    while tail < e.len() - head
        && tail < a.len() - head
        && e[e.len() - 1 - tail] == a[a.len() - 1 - tail]
    {
        tail += 1;
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "@@ first divergence at line {} ({} snapshot / {} actual lines) @@",
        head + 1,
        e.len(),
        a.len()
    );
    if head > 0 {
        let _ = writeln!(out, "  {}", e[head - 1]);
    }
    for line in &e[head..e.len() - tail] {
        let _ = writeln!(out, "- {line}");
    }
    for line in &a[head..a.len() - tail] {
        let _ = writeln!(out, "+ {line}");
    }
    if tail > 0 {
        let _ = writeln!(out, "  {}", e[e.len() - tail]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("cedar-golden-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn missing_snapshot_is_reported() {
        let path = tmp("definitely-absent.txt");
        let _ = std::fs::remove_file(&path);
        assert_eq!(check(&path, "x").unwrap(), GoldenStatus::Missing);
    }

    #[test]
    fn matching_snapshot_passes() {
        let path = tmp("match.txt");
        std::fs::write(&path, "a\nb\n").unwrap();
        assert_eq!(check(&path, "a\nb\n").unwrap(), GoldenStatus::Match);
    }

    #[test]
    fn mismatch_carries_a_line_diff() {
        let path = tmp("mismatch.txt");
        std::fs::write(&path, "a\nb\nc\n").unwrap();
        match check(&path, "a\nX\nc\n").unwrap() {
            GoldenStatus::Mismatch { diff } => {
                assert!(diff.contains("- b"), "{diff}");
                assert!(diff.contains("+ X"), "{diff}");
                assert!(diff.contains("line 2"), "{diff}");
            }
            other => panic!("expected mismatch, got {other:?}"),
        }
    }

    #[test]
    fn diff_trims_common_prefix_and_suffix() {
        let d = line_diff("1\n2\n3\n4\n5\n", "1\n2\nX\n4\n5\n");
        assert!(!d.contains("- 1"));
        assert!(!d.contains("- 5"));
        assert!(d.contains("- 3"));
        assert!(d.contains("+ X"));
    }

    #[test]
    fn diff_handles_pure_insertion() {
        let d = line_diff("a\nc\n", "a\nb\nc\n");
        assert!(d.contains("+ b"), "{d}");
        assert!(!d.contains("- a"), "{d}");
    }
}
