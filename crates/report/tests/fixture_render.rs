//! Table formatters pinned on hand-built [`RunResult`] fixtures.
//!
//! The golden tests in the workspace root pin the *end-to-end* pipeline
//! (simulate → analyse → render); a formatter bug there is entangled
//! with every simulator change. These tests hand-build `RunResult`
//! values with round, human-checkable numbers — no simulation at all —
//! so the Table 2–4 and fault-report renderers are pinned in isolation:
//! a snapshot diff here is *always* a formatter change.
//!
//! Snapshots live in `tests/golden/` next to this file and re-record
//! with `UPDATE_GOLDEN=1`.

use std::path::PathBuf;

use cedar_core::suite::{AppResults, SuiteResult, SuiteTelemetry};
use cedar_core::RunResult;
use cedar_hw::gmem::GmemStats;
use cedar_hw::{ClusterId, Configuration};
use cedar_report::tables;
use cedar_report::{golden, paper};
use cedar_sim::stats::LatencyHistogram;
use cedar_sim::Cycles;
use cedar_trace::qmon::ClusterUtilization;
use cedar_trace::{TaskBreakdown, UserBucket};
use cedar_xylem::{OsAccounting, OsActivity};

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.txt"))
}

fn empty_gmem() -> GmemStats {
    GmemStats {
        packets: 0,
        cluster_path_queued: Cycles::ZERO,
        fwd_queued: Cycles::ZERO,
        rev_queued: Cycles::ZERO,
        module_queued: Cycles::ZERO,
        module_requests: vec![],
        module_sync_requests: vec![],
        latency: LatencyHistogram::new(4),
        min_round_trip: Cycles(36),
    }
}

fn base_run(app: &'static str, configuration: Configuration, ct: u64) -> RunResult {
    RunResult {
        app,
        configuration,
        completion_time: Cycles(ct),
        breakdowns: vec![TaskBreakdown::new()],
        utilization: vec![ClusterUtilization::default()],
        os: OsAccounting::new(1),
        concurrency: vec![1.0],
        gmem: empty_gmem(),
        background_stolen: Cycles::ZERO,
        bodies: 0,
        faults: (0, 0),
        events: 0,
        trace: None,
        stats: cedar_obs::RunStats::default(),
    }
}

/// The 1-processor baseline: all loop work on one CE, concurrency 1.
fn p1_run(app: &'static str, scale: u64) -> RunResult {
    let mut r = base_run(app, Configuration::P1, 1_000_000 * scale);
    let b = &mut r.breakdowns[0];
    b.charge(UserBucket::IterExec, Cycles(600_000 * scale));
    b.charge(UserBucket::Serial, Cycles(300_000 * scale));
    b.charge(UserBucket::ClusterLoop, Cycles(100_000 * scale));
    r
}

/// A 32-processor run with round numbers: the main cluster splits its
/// time across every Figure-4 bucket, three helpers run spread loops,
/// and each Table-2 OS bucket gets a distinct, recognizable charge.
fn p32_run(app: &'static str, scale: u64) -> RunResult {
    let mut r = base_run(app, Configuration::P32, 60_000 * scale);
    r.breakdowns = Vec::new();
    let mut main = TaskBreakdown::new();
    main.charge(UserBucket::IterExec, Cycles(30_000 * scale));
    main.charge(UserBucket::ClusterLoop, Cycles(6_000 * scale));
    main.charge(UserBucket::Serial, Cycles(10_000 * scale));
    main.charge(UserBucket::PickupSdoall, Cycles(2_000 * scale));
    main.charge(UserBucket::BarrierWait, Cycles(4_000 * scale));
    main.charge(UserBucket::LoopSetup, Cycles(1_000 * scale));
    main.charge(UserBucket::ClusterSync, Cycles(3_000 * scale));
    r.breakdowns.push(main);
    for h in 0..3u64 {
        let mut b = TaskBreakdown::new();
        b.charge(UserBucket::IterExec, Cycles((38_000 + h * 2_000) * scale));
        b.charge(UserBucket::HelperWait, Cycles((12_000 - h * 1_000) * scale));
        b.charge(UserBucket::PickupSdoall, Cycles(2_000 * scale));
        r.breakdowns.push(b);
    }
    r.utilization = vec![ClusterUtilization::default(); 4];
    r.concurrency = vec![6.5, 7.0, 7.2, 6.8];
    r.os = OsAccounting::new(4);
    // One distinct, stable charge per Table-2 row: row i gets (i+1)·100
    // cycles, scaled per app so the three columns differ.
    for (i, a) in OsActivity::ALL.into_iter().enumerate() {
        r.os.charge(ClusterId(0), a, Cycles((i as u64 + 1) * 100 * scale));
    }
    r
}

/// Three-app, two-configuration campaign with per-app scale factors so
/// every rendered column is distinct.
fn fixture_suite() -> SuiteResult {
    let apps = [("FLO52", 1u64), ("ARC2D", 2), ("MDG", 3)];
    SuiteResult {
        apps: apps
            .into_iter()
            .map(|(name, scale)| AppResults {
                app: name,
                runs: vec![p1_run(name, scale), p32_run(name, scale)],
            })
            .collect(),
        telemetry: SuiteTelemetry::default(),
    }
}

#[test]
fn table2_rendering_is_pinned_on_fixtures() {
    let t = tables::table2(&fixture_suite());
    // Structure: one row per Table-2 activity (KernelSpin reported via
    // Figure 3 instead), two columns per app.
    for a in OsActivity::ALL {
        if a == OsActivity::KernelSpin {
            assert!(!t.contains(a.label()), "KernelSpin must stay out");
        } else {
            assert!(t.contains(a.label()), "missing row {a:?}");
        }
    }
    golden::assert_matches(&golden_path("fixture_table2"), &t);
}

#[test]
fn table3_rendering_is_pinned_on_fixtures() {
    let t = tables::table3(&fixture_suite());
    // P32 is 4 clusters: a Main row and exactly three helper rows.
    for task in ["Main", "helper1", "helper2", "helper3"] {
        assert!(t.contains(task), "missing task row {task}");
    }
    // Hand-check one cell: FLO52 main cluster, pf = 39/60 (IterExec +
    // ClusterLoop + PickupSdoall + ClusterSync), avg 6.5
    //   par = (6.5 - 1 + 0.65) / 0.65 = 9.46
    assert!(t.contains("9.46"), "main-cluster par_concurr:\n{t}");
    golden::assert_matches(&golden_path("fixture_table3"), &t);
}

#[test]
fn table4_rendering_is_pinned_on_fixtures() {
    let t = tables::table4(&fixture_suite());
    assert!(t.contains("Tp_actual"));
    assert!(t.contains("Tp_ideal"));
    assert!(t.contains("Ov_cont"));
    golden::assert_matches(&golden_path("fixture_table4"), &t);
}

#[test]
fn table1_rendering_is_pinned_on_fixtures() {
    let t = tables::table1(&fixture_suite());
    // Speedup of every app is 1_000_000/60_000 = 16.67, concurrency is
    // the per-cluster sum 27.5; both must render in the P32 column.
    assert!(t.contains("16.67"), "speedup cell:\n{t}");
    assert!(t.contains("27.50"), "concurrency cell:\n{t}");
    golden::assert_matches(&golden_path("fixture_table1"), &t);
}

/// `paper::*` comparisons walk every Table-1 app over the full
/// configuration grid, so they get a dedicated all-apps fixture: P1 is
/// the scaled baseline and every multi-processor run completes in
/// `T1 / (0.9 · p)` — a flat 90%-efficiency machine.
fn full_grid_suite() -> SuiteResult {
    let apps = [
        ("FLO52", 1u64),
        ("ARC2D", 2),
        ("MDG", 3),
        ("OCEAN", 4),
        ("ADM", 5),
    ];
    SuiteResult {
        apps: apps
            .into_iter()
            .map(|(name, scale)| AppResults {
                app: name,
                runs: Configuration::ALL
                    .into_iter()
                    .map(|c| {
                        if c == Configuration::P1 {
                            p1_run(name, scale)
                        } else {
                            let p = u64::from(c.clusters()) * u64::from(c.ces_per_cluster());
                            base_run(name, c, 1_000_000 * scale * 10 / (9 * p))
                        }
                    })
                    .collect(),
            })
            .collect(),
        telemetry: SuiteTelemetry::default(),
    }
}

#[test]
fn speedup_comparison_renders_against_paper_bands() {
    let t = paper::speedup_comparison(&full_grid_suite());
    assert!(t.contains("FLO52"));
    // 90% efficiency at 4 processors = speedup 3.60, at 32 = 28.80.
    assert!(t.contains("3.60"), "4-proc measured speedup:\n{t}");
    assert!(t.contains("28.80"), "32-proc measured speedup:\n{t}");
    golden::assert_matches(&golden_path("fixture_paper_speedup"), &t);
}

#[test]
fn fault_report_rendering_is_pinned_on_fixtures() {
    // Base: the P32 fixture. Faulted: same run stretched by injected OS
    // time, with the injection counters the campaign would have kept.
    let base = p32_run("FLO52", 1);
    let mut faulted = p32_run("FLO52", 1);
    faulted.completion_time += Cycles(9_000);
    faulted
        .os
        .charge(ClusterId(0), OsActivity::Cpi, Cycles(4_000));
    faulted
        .os
        .charge(ClusterId(1), OsActivity::Cpi, Cycles(1_000));
    faulted
        .os
        .charge(ClusterId(0), OsActivity::Ast, Cycles(2_500));
    faulted.stats.counters.add("faults.injected.cpi", 5_000);
    faulted.stats.counters.add("faults.injected.ast", 2_500);
    faulted.stats.counters.add("faults.injected.stall", 1_200);

    let r = tables::fault_report(&base, &faulted);
    // Every Table-2 bucket appears, plus the synthesis rows.
    for a in OsActivity::ALL {
        assert!(r.contains(a.label()), "missing {a:?} row");
    }
    assert!(r.contains("helper stall (user)"));
    assert!(r.contains("gmem queued/pkt"));
    assert!(r.contains("completion time"));
    golden::assert_matches(&golden_path("fixture_fault_report"), &r);
}

#[test]
#[should_panic(expected = "same app")]
fn fault_report_rejects_mismatched_apps() {
    let base = p32_run("FLO52", 1);
    let faulted = p32_run("MDG", 1);
    tables::fault_report(&base, &faulted);
}

#[test]
#[should_panic(expected = "same configuration")]
fn fault_report_rejects_mismatched_configurations() {
    let base = p32_run("FLO52", 1);
    let faulted = {
        let mut r = p32_run("FLO52", 1);
        r.configuration = Configuration::P16;
        r
    };
    tables::fault_report(&base, &faulted);
}
