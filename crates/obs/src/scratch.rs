//! Fixed-capacity scratch counters for simulation hot loops.
//!
//! The event loop processes hundreds of millions of events per campaign;
//! routing each tally through a name-keyed [`Counters`] map (a B-tree
//! probe per event) would perturb exactly the thing the simulator is
//! trying to measure. A [`ScratchCounters`] block is the batching layer:
//! a flat `[u64; N]` the hot loop bumps by compile-time index, paired
//! with a static name table, flushed into the run's [`Counters`] rollup
//! once at a phase boundary (end of run) instead of per event.

use crate::recorder::Counters;

/// A flat block of `N` counters addressed by index on the hot path and
/// by name only at flush time.
///
/// # Example
///
/// ```
/// use cedar_obs::{Counters, ScratchCounters};
///
/// let mut s = ScratchCounters::new(["events.total", "events.gmem"]);
/// s.bump(0);
/// s.bump(0);
/// s.bump(1);
/// let mut rollup = Counters::new();
/// s.flush_into(&mut rollup);
/// assert_eq!(rollup.get("events.total"), 2);
/// assert_eq!(rollup.get("events.gmem"), 1);
/// ```
#[derive(Debug, Clone)]
pub struct ScratchCounters<const N: usize> {
    slots: [u64; N],
    names: [&'static str; N],
}

impl<const N: usize> ScratchCounters<N> {
    /// Creates a zeroed block whose slot `i` flushes under `names[i]`.
    pub fn new(names: [&'static str; N]) -> Self {
        ScratchCounters {
            slots: [0; N],
            names,
        }
    }

    /// Increments slot `idx` by one.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= N`.
    #[inline]
    pub fn bump(&mut self, idx: usize) {
        self.slots[idx] += 1;
    }

    /// Adds `n` to slot `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= N`.
    #[inline]
    pub fn add(&mut self, idx: usize, n: u64) {
        self.slots[idx] += n;
    }

    /// Current value of slot `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= N`.
    pub fn get(&self, idx: usize) -> u64 {
        self.slots[idx]
    }

    /// Folds every slot into `counters` under its flush name. Zero slots
    /// are flushed too, so a counter's presence in the rollup does not
    /// depend on traffic.
    pub fn flush_into(&self, counters: &mut Counters) {
        for (name, &v) in self.names.iter().zip(&self.slots) {
            counters.add(name, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_add_get_roundtrip() {
        let mut s = ScratchCounters::new(["a", "b", "c"]);
        s.bump(0);
        s.add(1, 41);
        s.bump(1);
        assert_eq!((s.get(0), s.get(1), s.get(2)), (1, 42, 0));
    }

    #[test]
    fn flush_reports_zero_slots_too() {
        let mut s = ScratchCounters::new(["hot", "cold"]);
        s.add(0, 7);
        let mut c = Counters::new();
        s.flush_into(&mut c);
        assert_eq!(c.get("hot"), 7);
        assert_eq!(c.get("cold"), 0);
        assert_eq!(c.len(), 2, "cold counter still present in the rollup");
    }

    #[test]
    fn flush_accumulates_into_existing_counters() {
        let mut s = ScratchCounters::new(["x"]);
        s.add(0, 5);
        let mut c = Counters::new();
        c.add("x", 10);
        s.flush_into(&mut c);
        assert_eq!(c.get("x"), 15);
    }

    #[test]
    #[should_panic]
    fn out_of_range_bump_panics() {
        let mut s = ScratchCounters::new(["only"]);
        s.bump(1);
    }
}
