//! # cedar-obs — the simulator's own measurement infrastructure
//!
//! The paper instruments Cedar with cedarhpm trigger points, statfx and
//! the Q facility to decompose where a run's time goes. This crate turns
//! the same discipline inward: it is the observability substrate for the
//! *simulator itself*, so a campaign can report where the event loop,
//! scheduler, worker pool and outbox spend wall-clock time.
//!
//! Three pieces:
//!
//! * [`Recorder`] — a lightweight span/counter facility. Spans are
//!   enter/exit wall-clock intervals ([`Recorder::enter`] /
//!   [`Recorder::exit`], or the closure form [`Recorder::time`]);
//!   counters are monotonic named totals ([`Counters`]). A disabled
//!   recorder is a no-op: `enter` never reads the clock and every other
//!   call returns immediately, so instrumented code pays one branch.
//!   For per-event tallies even that is too much; hot loops batch into
//!   a flat [`ScratchCounters`] block and flush it into the rollup at a
//!   phase boundary.
//! * [`RunOptions`] — the single typed run-configuration record
//!   (scheduler kind, worker count, shrink factor, smoke mode,
//!   telemetry level, output directory). Built programmatically with
//!   builder methods, or once at process startup from the environment
//!   via [`RunOptions::from_env`] — the only place in the workspace
//!   (besides the golden-update hook) that reads configuration
//!   environment variables.
//! * [`json`] — a tiny ordered-JSON writer and reader plus the stable
//!   [`fingerprint`](json::fnv1a) hash and [`git_describe`](json::git_describe)
//!   helper used by the run manifest (`results/RUN_manifest.json`) and
//!   the serving layer's campaign specs.
//! * [`CedarError`] — the workspace's typed error enum, defined here so
//!   every layer (cache, core, report, serve) shares one fallible
//!   surface; `cedar_core::CedarError` re-exports it as the canonical
//!   import path.

pub mod error;
pub mod json;
pub mod options;
pub mod recorder;
pub mod scratch;

pub use error::CedarError;
pub use options::{CacheMode, RunOptions, TelemetryLevel};
pub use recorder::{Counters, Recorder, RunStats, SpanStat, SpanToken};
pub use scratch::ScratchCounters;
