//! A minimal ordered-JSON writer, the manifest fingerprint hash, and the
//! `git describe` helper.
//!
//! The workspace is zero-dependency by design, so the manifest and
//! telemetry streams are rendered with this hand-rolled writer rather
//! than serde. Objects emit fields in insertion order, which the
//! manifest uses to keep its layout stable across runs (and therefore
//! diffable).

use std::fmt::Write as _;

/// Escapes `s` as a JSON string literal (with quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// An insertion-ordered JSON object under construction.
///
/// # Example
///
/// ```
/// use cedar_obs::json::Obj;
///
/// let mut o = Obj::new();
/// o.str("name", "cedar");
/// o.u64("events", 42);
/// o.raw("nested", Obj::new().finish());
/// assert_eq!(o.finish(), r#"{"name":"cedar","events":42,"nested":{}}"#);
/// ```
#[derive(Debug, Default)]
pub struct Obj {
    buf: String,
}

impl Obj {
    /// Starts an empty object.
    pub fn new() -> Self {
        Obj::default()
    }

    fn key(&mut self, name: &str) {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        self.buf.push_str(&escape(name));
        self.buf.push(':');
    }

    /// Adds a string field.
    pub fn str(&mut self, name: &str, value: &str) -> &mut Self {
        self.key(name);
        self.buf.push_str(&escape(value));
        self
    }

    /// Adds an unsigned-integer field.
    pub fn u64(&mut self, name: &str, value: u64) -> &mut Self {
        self.key(name);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Adds a float field with one decimal.
    pub fn f64(&mut self, name: &str, value: f64) -> &mut Self {
        self.key(name);
        let _ = write!(self.buf, "{value:.1}");
        self
    }

    /// Adds a boolean field.
    pub fn bool(&mut self, name: &str, value: bool) -> &mut Self {
        self.key(name);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Adds an integer-or-null field.
    pub fn opt_u64(&mut self, name: &str, value: Option<u64>) -> &mut Self {
        self.key(name);
        match value {
            Some(v) => {
                let _ = write!(self.buf, "{v}");
            }
            None => self.buf.push_str("null"),
        }
        self
    }

    /// Adds a pre-rendered JSON value verbatim (nested object/array).
    pub fn raw(&mut self, name: &str, value: impl AsRef<str>) -> &mut Self {
        self.key(name);
        self.buf.push_str(value.as_ref());
        self
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(&mut self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// Renders an array of pre-rendered JSON values.
pub fn array<I: IntoIterator<Item = String>>(items: I) -> String {
    let body: Vec<String> = items.into_iter().collect();
    format!("[{}]", body.join(","))
}

/// Renders an array of strings.
pub fn str_array<'a, I: IntoIterator<Item = &'a str>>(items: I) -> String {
    array(items.into_iter().map(escape))
}

/// FNV-1a 64-bit hash — the manifest's configuration fingerprint. Stable
/// across platforms and runs: the same bytes always fingerprint the
/// same.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// `git describe --always --dirty` of the working tree, when a git
/// binary and repository are reachable; `None` otherwise (the manifest
/// then records `null`). Best-effort by design — offline and
/// exported-tarball builds must not fail over provenance.
pub fn git_describe() -> Option<String> {
    let out = std::process::Command::new("git")
        .args(["describe", "--always", "--dirty", "--tags"])
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let s = String::from_utf8(out.stdout).ok()?;
    let s = s.trim();
    (!s.is_empty()).then(|| s.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(escape("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn object_fields_keep_insertion_order() {
        let mut o = Obj::new();
        o.str("z", "last-added-first");
        o.u64("a", 1);
        o.bool("ok", true);
        o.opt_u64("w", None);
        assert_eq!(
            o.finish(),
            r#"{"z":"last-added-first","a":1,"ok":true,"w":null}"#
        );
    }

    #[test]
    fn arrays_render() {
        assert_eq!(str_array(["a", "b"]), r#"["a","b"]"#);
        assert_eq!(array(Vec::new()), "[]");
    }

    #[test]
    fn fnv1a_is_stable_and_discriminating() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"sched=heap"), fnv1a(b"sched=calendar"));
        assert_eq!(fnv1a(b"x"), fnv1a(b"x"));
    }
}
