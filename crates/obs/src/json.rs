//! A minimal ordered-JSON writer and reader, the manifest fingerprint
//! hash, and the `git describe` helper.
//!
//! The workspace is zero-dependency by design, so the manifest and
//! telemetry streams are rendered with this hand-rolled writer rather
//! than serde. Objects emit fields in insertion order, which the
//! manifest uses to keep its layout stable across runs (and therefore
//! diffable). The matching reader ([`parse`]) is a strict
//! recursive-descent parser over the same subset of JSON the writer
//! emits — the serving layer uses it to decode campaign specs off the
//! wire, and the load generator to decode replies.

use std::fmt::Write as _;

/// Escapes `s` as a JSON string literal (with quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// An insertion-ordered JSON object under construction.
///
/// # Example
///
/// ```
/// use cedar_obs::json::Obj;
///
/// let mut o = Obj::new();
/// o.str("name", "cedar");
/// o.u64("events", 42);
/// o.raw("nested", Obj::new().finish());
/// assert_eq!(o.finish(), r#"{"name":"cedar","events":42,"nested":{}}"#);
/// ```
#[derive(Debug, Default)]
pub struct Obj {
    buf: String,
}

impl Obj {
    /// Starts an empty object.
    pub fn new() -> Self {
        Obj::default()
    }

    fn key(&mut self, name: &str) {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        self.buf.push_str(&escape(name));
        self.buf.push(':');
    }

    /// Adds a string field.
    pub fn str(&mut self, name: &str, value: &str) -> &mut Self {
        self.key(name);
        self.buf.push_str(&escape(value));
        self
    }

    /// Adds an unsigned-integer field.
    pub fn u64(&mut self, name: &str, value: u64) -> &mut Self {
        self.key(name);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Adds a float field with one decimal.
    pub fn f64(&mut self, name: &str, value: f64) -> &mut Self {
        self.key(name);
        let _ = write!(self.buf, "{value:.1}");
        self
    }

    /// Adds a boolean field.
    pub fn bool(&mut self, name: &str, value: bool) -> &mut Self {
        self.key(name);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Adds an integer-or-null field.
    pub fn opt_u64(&mut self, name: &str, value: Option<u64>) -> &mut Self {
        self.key(name);
        match value {
            Some(v) => {
                let _ = write!(self.buf, "{v}");
            }
            None => self.buf.push_str("null"),
        }
        self
    }

    /// Adds a pre-rendered JSON value verbatim (nested object/array).
    pub fn raw(&mut self, name: &str, value: impl AsRef<str>) -> &mut Self {
        self.key(name);
        self.buf.push_str(value.as_ref());
        self
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(&mut self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// Renders an array of pre-rendered JSON values.
pub fn array<I: IntoIterator<Item = String>>(items: I) -> String {
    let body: Vec<String> = items.into_iter().collect();
    format!("[{}]", body.join(","))
}

/// Renders an array of strings.
pub fn str_array<'a, I: IntoIterator<Item = &'a str>>(items: I) -> String {
    array(items.into_iter().map(escape))
}

/// FNV-1a 64-bit hash — the manifest's configuration fingerprint. Stable
/// across platforms and runs: the same bytes always fingerprint the
/// same.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// `git describe --always --dirty` of the working tree, when a git
/// binary and repository are reachable; `None` otherwise (the manifest
/// then records `null`). Best-effort by design — offline and
/// exported-tarball builds must not fail over provenance.
pub fn git_describe() -> Option<String> {
    let out = std::process::Command::new("git")
        .args(["describe", "--always", "--dirty", "--tags"])
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let s = String::from_utf8(out.stdout).ok()?;
    let s = s.trim();
    (!s.is_empty()).then(|| s.to_string())
}

/// A parsed JSON value. Object fields keep their textual order (the
/// parser is the reader-side mirror of [`Obj`]'s insertion ordering).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Num(f64),
    /// A string literal, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, fields in source order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks a field up in an object (first match); `None` for other
    /// value kinds or missing fields.
    pub fn get(&self, name: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a number with an
    /// exact `u64` representation.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parses a complete JSON document. Strict: the whole input must be one
/// value (plus surrounding whitespace); trailing bytes, trailing commas,
/// unterminated literals and bad escapes are errors. Error messages
/// carry the byte offset so a malformed campaign spec diagnoses itself.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(v)
}

/// Nesting bound for the recursive-descent parser — far above any spec
/// or reply the workspace emits, low enough that hostile input cannot
/// overflow the stack.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at offset {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at offset {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, String> {
        if depth > MAX_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_DEPTH} at offset {}",
                self.pos
            ));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(format!("unexpected `{}` at offset {}", c as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| format!("truncated \\u at offset {}", self.pos))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| format!("bad \\u at offset {}", self.pos))?,
                                16,
                            )
                            .map_err(|_| format!("bad \\u at offset {}", self.pos))?;
                            // Surrogates are rejected rather than paired:
                            // nothing in the workspace emits them.
                            let c = char::from_u32(code)
                                .ok_or_else(|| format!("bad \\u code at offset {}", self.pos))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(format!("raw control byte in string at offset {}", self.pos))
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through unchanged.
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| format!("invalid UTF-8 at offset {start}"))?,
                    );
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice");
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("bad number `{text}` at offset {start}"))
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at offset {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at offset {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(escape("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn object_fields_keep_insertion_order() {
        let mut o = Obj::new();
        o.str("z", "last-added-first");
        o.u64("a", 1);
        o.bool("ok", true);
        o.opt_u64("w", None);
        assert_eq!(
            o.finish(),
            r#"{"z":"last-added-first","a":1,"ok":true,"w":null}"#
        );
    }

    #[test]
    fn arrays_render() {
        assert_eq!(str_array(["a", "b"]), r#"["a","b"]"#);
        assert_eq!(array(Vec::new()), "[]");
    }

    #[test]
    fn fnv1a_is_stable_and_discriminating() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"sched=heap"), fnv1a(b"sched=calendar"));
        assert_eq!(fnv1a(b"x"), fnv1a(b"x"));
    }

    #[test]
    fn parse_round_trips_what_the_writer_emits() {
        let mut o = Obj::new();
        o.str("name", "cedar \"v1\"\n");
        o.u64("events", 42);
        o.bool("ok", true);
        o.opt_u64("w", None);
        o.f64("rate", 2.5);
        o.raw("list", array(vec!["1".to_string(), "\"a\"".to_string()]));
        let v = parse(&o.finish()).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("cedar \"v1\"\n"));
        assert_eq!(v.get("events").unwrap().as_u64(), Some(42));
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("w"), Some(&JsonValue::Null));
        assert_eq!(v.get("rate").unwrap().as_f64(), Some(2.5));
        assert_eq!(
            v.get("list"),
            Some(&JsonValue::Arr(vec![
                JsonValue::Num(1.0),
                JsonValue::Str("a".to_string())
            ]))
        );
    }

    #[test]
    fn parse_accepts_whitespace_and_nesting() {
        let v = parse(" { \"a\" : [ 1 , { \"b\" : -2.5e1 } ] } ").unwrap();
        let arr = match v.get("a").unwrap() {
            JsonValue::Arr(a) => a,
            other => panic!("expected array, got {other:?}"),
        };
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].get("b").unwrap().as_f64(), Some(-25.0));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "{\"a\":1,}",
            "[1 2]",
            "{\"a\":1} trailing",
            "\"unterminated",
            "nul",
            "{\"a\" 1}",
            "\u{1}",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parse_bounds_nesting_depth() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&deep).is_err());
        let fine = "[".repeat(20) + &"]".repeat(20);
        assert!(parse(&fine).is_ok());
    }

    #[test]
    fn typed_accessors_are_strict() {
        let v = parse("{\"n\":1.5,\"s\":\"x\",\"neg\":-1}").unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), None, "fractional");
        assert_eq!(v.get("neg").unwrap().as_u64(), None, "negative");
        assert_eq!(v.get("s").unwrap().as_f64(), None, "wrong kind");
        assert_eq!(v.get("missing"), None);
        assert_eq!(JsonValue::Num(1.0).get("x"), None, "non-object get");
    }
}
