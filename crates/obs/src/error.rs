//! The workspace's typed error API.
//!
//! Every public fallible entry point — configuration validation, cache
//! store opening, campaign-spec parsing, golden/report rendering, the
//! campaign runners, and the serving layer — returns
//! `Result<_, CedarError>` instead of panicking or stringly-typed
//! errors. The variants are deliberately coarse: they partition failures
//! by *who must act* (the caller sent a bad spec, the caller sent a
//! structurally invalid configuration, the host's storage misbehaved,
//! the service is saturated, or the reproduction itself broke an
//! invariant), which is exactly the granularity an HTTP status mapping
//! or a retry policy needs.
//!
//! The enum lives in `cedar-obs` — the leaf crate every layer already
//! depends on — and is re-exported as `cedar_core::CedarError` (and from
//! the preludes), which is the canonical import path for tools.

/// A typed workspace error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CedarError {
    /// A configuration or workload model violates a structural
    /// invariant (missing array reference, zero-iteration loop,
    /// zero event bound). Maps to HTTP 400.
    ConfigInvalid(String),
    /// The content-addressed run cache could not be opened or written
    /// (root is a file, permissions, disk full at open time). Maps to
    /// HTTP 500.
    CacheIo(String),
    /// A campaign spec (the serving layer's JSON request body) failed to
    /// parse or named an unknown application/configuration. Maps to
    /// HTTP 400.
    SpecParse(String),
    /// The service's bounded request queue is full; retry after the
    /// given number of seconds. Maps to HTTP 503 + `Retry-After`.
    Overloaded {
        /// Suggested client back-off, seconds.
        retry_after_s: u32,
    },
    /// The reproduction itself failed an invariant (a panicking
    /// experiment, an I/O failure rendering a report). Maps to HTTP 500.
    Internal(String),
    /// A `cedar-check` invariant oracle found a measurement that breaks
    /// one of the reproduction's claimed laws (conservation, scheduler
    /// parity, fault-attribution monotonicity, …). Carries the oracle
    /// name so tooling can route the violation without parsing the
    /// message. Maps to HTTP 500.
    CheckViolation {
        /// The violated oracle's registry name (e.g. `"conservation"`).
        oracle: String,
        /// Human-readable description of what broke.
        detail: String,
    },
}

impl CedarError {
    /// A short machine-readable kind tag, stable across releases — what
    /// the serving layer writes into error bodies and what clients
    /// should switch on instead of the human-readable message.
    pub fn kind(&self) -> &'static str {
        match self {
            CedarError::ConfigInvalid(_) => "config_invalid",
            CedarError::CacheIo(_) => "cache_io",
            CedarError::SpecParse(_) => "spec_parse",
            CedarError::Overloaded { .. } => "overloaded",
            CedarError::Internal(_) => "internal",
            CedarError::CheckViolation { .. } => "check_violation",
        }
    }

    /// The HTTP status the serving layer answers this error with.
    pub fn http_status(&self) -> u16 {
        match self {
            CedarError::ConfigInvalid(_) | CedarError::SpecParse(_) => 400,
            CedarError::Overloaded { .. } => 503,
            CedarError::CacheIo(_)
            | CedarError::Internal(_)
            | CedarError::CheckViolation { .. } => 500,
        }
    }
}

impl std::fmt::Display for CedarError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CedarError::ConfigInvalid(m) => write!(f, "invalid configuration: {m}"),
            CedarError::CacheIo(m) => write!(f, "run-cache I/O failure: {m}"),
            CedarError::SpecParse(m) => write!(f, "campaign spec parse failure: {m}"),
            CedarError::Overloaded { retry_after_s } => {
                write!(f, "service overloaded; retry after {retry_after_s}s")
            }
            CedarError::Internal(m) => write!(f, "internal error: {m}"),
            CedarError::CheckViolation { oracle, detail } => {
                write!(f, "check oracle `{oracle}` violated: {detail}")
            }
        }
    }
}

impl std::error::Error for CedarError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_statuses_partition_the_variants() {
        let all = [
            CedarError::ConfigInvalid("x".into()),
            CedarError::CacheIo("x".into()),
            CedarError::SpecParse("x".into()),
            CedarError::Overloaded { retry_after_s: 1 },
            CedarError::Internal("x".into()),
            CedarError::CheckViolation {
                oracle: "conservation".into(),
                detail: "x".into(),
            },
        ];
        let kinds: Vec<_> = all.iter().map(|e| e.kind()).collect();
        assert_eq!(
            kinds,
            vec![
                "config_invalid",
                "cache_io",
                "spec_parse",
                "overloaded",
                "internal",
                "check_violation"
            ]
        );
        let statuses: Vec<_> = all.iter().map(|e| e.http_status()).collect();
        assert_eq!(statuses, vec![400, 500, 400, 503, 500, 500]);
    }

    #[test]
    fn display_carries_the_message() {
        let e = CedarError::SpecParse("unknown app `NOPE`".into());
        assert!(e.to_string().contains("unknown app `NOPE`"));
        assert_eq!(
            CedarError::Overloaded { retry_after_s: 2 }.to_string(),
            "service overloaded; retry after 2s"
        );
    }

    #[test]
    fn error_trait_is_implemented() {
        let e: Box<dyn std::error::Error> = Box::new(CedarError::Internal("boom".into()));
        assert!(e.to_string().contains("boom"));
    }
}
