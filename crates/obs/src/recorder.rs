//! Spans, counters and per-run rollups.
//!
//! The conventions are deliberately simple so every layer of the
//! workspace can feed the same rollup:
//!
//! * counter names are dotted paths (`"queue.scheduled"`,
//!   `"events.gmem"`), and
//! * names ending in `.peak` are high-water marks — merging two rollups
//!   takes their maximum instead of their sum.

use std::collections::BTreeMap;
use std::time::Instant;

/// Named monotonic counters with deterministic (sorted) iteration order.
///
/// # Example
///
/// ```
/// use cedar_obs::Counters;
///
/// let mut c = Counters::new();
/// c.add("queue.scheduled", 10);
/// c.add("queue.scheduled", 5);
/// c.record_max("queue.pending.peak", 7);
/// c.record_max("queue.pending.peak", 3);
/// assert_eq!(c.get("queue.scheduled"), 15);
/// assert_eq!(c.get("queue.pending.peak"), 7);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counters {
    map: BTreeMap<&'static str, u64>,
}

impl Counters {
    /// Creates an empty counter set.
    pub fn new() -> Self {
        Counters::default()
    }

    /// Adds `n` to the counter `name` (creating it at zero).
    pub fn add(&mut self, name: &'static str, n: u64) {
        *self.map.entry(name).or_insert(0) += n;
    }

    /// Raises the high-water mark `name` to at least `v`. By convention
    /// such names end in `.peak` so [`merge`](Self::merge) combines them
    /// with `max` rather than `+`.
    pub fn record_max(&mut self, name: &'static str, v: u64) {
        let slot = self.map.entry(name).or_insert(0);
        *slot = (*slot).max(v);
    }

    /// The current value of `name` (zero when never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.map.get(name).copied().unwrap_or(0)
    }

    /// Folds `other` into `self`: sums ordinary counters, maxes the
    /// `.peak` high-water marks.
    pub fn merge(&mut self, other: &Counters) {
        for (&name, &v) in &other.map {
            if name.ends_with(".peak") {
                self.record_max(name, v);
            } else {
                self.add(name, v);
            }
        }
    }

    /// Iterates `(name, value)` in sorted name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.map.iter().map(|(&k, &v)| (k, v))
    }

    /// Number of distinct counters.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when no counter was ever touched.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Accumulated wall-clock of one named span.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Completed enter/exit pairs.
    pub count: u64,
    /// Total wall-clock across those pairs, in nanoseconds.
    pub total_ns: u64,
}

/// An open span returned by [`Recorder::enter`]; close it with
/// [`Recorder::exit`]. A token from a disabled recorder carries no
/// timestamp, so the clock is never read.
#[must_use = "close the span with Recorder::exit"]
#[derive(Debug)]
pub struct SpanToken {
    name: &'static str,
    start: Option<Instant>,
}

/// The span/counter facility.
///
/// # Example
///
/// ```
/// use cedar_obs::Recorder;
///
/// let mut rec = Recorder::enabled();
/// let span = rec.enter("campaign");
/// rec.count("suites", 1);
/// rec.exit(span);
/// assert_eq!(rec.span("campaign").count, 1);
///
/// // A disabled recorder records nothing and never reads the clock.
/// let mut off = Recorder::disabled();
/// let span = off.enter("campaign");
/// off.exit(span);
/// assert_eq!(off.span("campaign").count, 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    enabled: bool,
    counters: Counters,
    spans: BTreeMap<&'static str, SpanStat>,
}

impl Recorder {
    /// Creates a recorder; `enabled = false` makes every call a no-op.
    pub fn new(enabled: bool) -> Self {
        Recorder {
            enabled,
            ..Recorder::default()
        }
    }

    /// A recording recorder.
    pub fn enabled() -> Self {
        Recorder::new(true)
    }

    /// A no-op recorder.
    pub fn disabled() -> Self {
        Recorder::new(false)
    }

    /// `true` when this recorder records.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Adds `n` to counter `name`.
    pub fn count(&mut self, name: &'static str, n: u64) {
        if self.enabled {
            self.counters.add(name, n);
        }
    }

    /// Raises high-water mark `name` to at least `v`.
    pub fn record_max(&mut self, name: &'static str, v: u64) {
        if self.enabled {
            self.counters.record_max(name, v);
        }
    }

    /// Opens a span. Reads the clock only when enabled.
    pub fn enter(&self, name: &'static str) -> SpanToken {
        SpanToken {
            name,
            start: self.enabled.then(Instant::now),
        }
    }

    /// Closes a span opened by [`enter`](Self::enter), charging its
    /// elapsed wall-clock to the span's name.
    pub fn exit(&mut self, token: SpanToken) {
        if let Some(start) = token.start {
            let stat = self.spans.entry(token.name).or_default();
            stat.count += 1;
            stat.total_ns += start.elapsed().as_nanos() as u64;
        }
    }

    /// Times `f` as one enter/exit pair of span `name`.
    pub fn time<T>(&mut self, name: &'static str, f: impl FnOnce() -> T) -> T {
        let token = self.enter(name);
        let out = f();
        self.exit(token);
        out
    }

    /// The accumulated statistics of span `name` (zeros when never
    /// closed).
    pub fn span(&self, name: &str) -> SpanStat {
        self.spans.get(name).copied().unwrap_or_default()
    }

    /// Iterates `(name, stat)` over all closed spans, in name order.
    pub fn spans(&self) -> impl Iterator<Item = (&'static str, SpanStat)> + '_ {
        self.spans.iter().map(|(&k, &v)| (k, v))
    }

    /// The recorder's counter set.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }
}

/// Per-run self-telemetry: where one experiment's wall-clock went, plus
/// the run's counter rollup (event classes, queue statistics, outbox
/// reuse). Attached to every `RunResult`; collection is cheap enough to
/// be always-on — the counters are plain integer fields in the hot
/// structures, snapshotted once at end of run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Wall-clock nanoseconds building the machine (`Machine::new`).
    pub setup_ns: u64,
    /// Wall-clock nanoseconds in the event loop.
    pub run_ns: u64,
    /// Wall-clock nanoseconds assembling breakdowns and results.
    pub breakdown_ns: u64,
    /// The run's counter rollup. Deterministic for a fixed configuration
    /// — no wall-clock quantities live here.
    pub counters: Counters,
}

impl RunStats {
    /// Total instrumented wall-clock of the run.
    pub fn total_ns(&self) -> u64 {
        self.setup_ns + self.run_ns + self.breakdown_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_sum_and_peak() {
        let mut a = Counters::new();
        a.add("x", 2);
        a.record_max("p.peak", 10);
        let mut b = Counters::new();
        b.add("x", 3);
        b.record_max("p.peak", 7);
        a.merge(&b);
        assert_eq!(a.get("x"), 5);
        assert_eq!(a.get("p.peak"), 10, "peaks merge by max, not sum");
    }

    #[test]
    fn iteration_is_sorted() {
        let mut c = Counters::new();
        c.add("zz", 1);
        c.add("aa", 1);
        c.add("mm", 1);
        let names: Vec<_> = c.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["aa", "mm", "zz"]);
    }

    #[test]
    fn disabled_recorder_is_a_no_op() {
        let mut r = Recorder::disabled();
        r.count("c", 5);
        r.record_max("c.peak", 5);
        let t = r.enter("s");
        assert!(
            format!("{t:?}").contains("None"),
            "disabled enter must not read the clock"
        );
        r.exit(t);
        assert!(r.counters().is_empty());
        assert_eq!(r.span("s"), SpanStat::default());
    }

    #[test]
    fn spans_accumulate() {
        let mut r = Recorder::enabled();
        for _ in 0..3 {
            let t = r.enter("loop");
            r.exit(t);
        }
        let s = r.span("loop");
        assert_eq!(s.count, 3);
        let v = r.time("timed", || 42);
        assert_eq!(v, 42);
        assert_eq!(r.span("timed").count, 1);
    }

    #[test]
    fn run_stats_total() {
        let s = RunStats {
            setup_ns: 1,
            run_ns: 2,
            breakdown_ns: 3,
            counters: Counters::new(),
        };
        assert_eq!(s.total_ns(), 6);
    }
}
