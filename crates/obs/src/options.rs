//! The typed run-configuration API.
//!
//! Every knob that used to be a scattered `std::env::var` read —
//! `CEDAR_SCHED`, `CEDAR_WORKERS`, `CEDAR_SHRINK`, `BENCH_SMOKE`,
//! `BENCH_ITERS`, `BENCH_WARMUP`, `BENCH_JSON_DIR`, plus the new
//! `CEDAR_OBS` telemetry level — now lives in one [`RunOptions`] value.
//! Library code takes `&RunOptions` explicitly; the environment is
//! consulted exactly once, by [`RunOptions::from_env`], at process
//! startup (tools and the bench harness do this; tests construct
//! options programmatically).

use std::path::PathBuf;

use cedar_faults::FaultPlan;
use cedar_sim::{SchedKind, TieBreak};

/// How much self-telemetry a run emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TelemetryLevel {
    /// Collect nothing beyond the always-on cheap counters; write no
    /// telemetry files.
    Off,
    /// Write the run manifest (`RUN_manifest.json`) with the span and
    /// counter rollup. The default.
    #[default]
    Summary,
    /// Additionally stream one JSONL record per experiment
    /// (`RUN_telemetry.jsonl`) for offline analysis.
    Full,
}

impl TelemetryLevel {
    /// Canonical lower-case name, as accepted by `CEDAR_OBS`.
    pub fn as_str(self) -> &'static str {
        match self {
            TelemetryLevel::Off => "off",
            TelemetryLevel::Summary => "summary",
            TelemetryLevel::Full => "full",
        }
    }
}

impl std::str::FromStr for TelemetryLevel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" | "0" => Ok(TelemetryLevel::Off),
            "summary" | "1" | "" => Ok(TelemetryLevel::Summary),
            "full" | "2" => Ok(TelemetryLevel::Full),
            other => Err(format!(
                "telemetry level must be off|summary|full, got `{other}`"
            )),
        }
    }
}

/// How a campaign uses the content-addressed run cache
/// (`results/cache/`, implemented by the `cedar-cache` crate).
///
/// The cache memoizes *deterministic simulation results*, so using it is
/// a wall-clock-only decision: every mode produces byte-identical
/// measurements, and the mode therefore does **not** participate in
/// [`RunOptions::fingerprint_seed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheMode {
    /// Never touch the cache. The default: plain runs, benchmarks and
    /// the bench-regression gate all measure real simulation.
    #[default]
    Off,
    /// Serve hits from disk, write misses back. The campaign mode.
    ReadWrite,
    /// Serve hits, never write (e.g. CI jobs with a read-only mount).
    ReadOnly,
    /// Recompute everything and overwrite entries — a forced
    /// repopulation after a suspected stale cache.
    Refresh,
}

impl CacheMode {
    /// Canonical name, as accepted by `CEDAR_CACHE`.
    pub fn as_str(self) -> &'static str {
        match self {
            CacheMode::Off => "off",
            CacheMode::ReadWrite => "rw",
            CacheMode::ReadOnly => "ro",
            CacheMode::Refresh => "refresh",
        }
    }

    /// Whether this mode ever reads entries.
    pub fn reads(self) -> bool {
        matches!(self, CacheMode::ReadWrite | CacheMode::ReadOnly)
    }

    /// Whether this mode ever writes entries.
    pub fn writes(self) -> bool {
        matches!(self, CacheMode::ReadWrite | CacheMode::Refresh)
    }
}

impl std::str::FromStr for CacheMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" | "0" => Ok(CacheMode::Off),
            "rw" | "readwrite" | "on" | "1" => Ok(CacheMode::ReadWrite),
            "ro" | "readonly" => Ok(CacheMode::ReadOnly),
            "refresh" => Ok(CacheMode::Refresh),
            other => Err(format!(
                "cache mode must be off|rw|ro|refresh, got `{other}`"
            )),
        }
    }
}

/// One run's complete tool-level configuration.
///
/// `SimConfig` still owns the *simulated machine* (hardware, OS and RTL
/// cost models, seed); `RunOptions` owns how the *host process* executes
/// the campaign: which event scheduler backs the queue, how many worker
/// threads fan the grid, whether workloads are shrunk, how benchmarks
/// iterate, how much telemetry to emit, and where output files land.
///
/// # Example
///
/// ```
/// use cedar_obs::{RunOptions, TelemetryLevel};
/// use cedar_sim::SchedKind;
///
/// let opts = RunOptions::default()
///     .with_scheduler(SchedKind::Heap)
///     .with_workers(4)
///     .with_shrink(16)
///     .with_telemetry(TelemetryLevel::Full);
/// assert_eq!(opts.scheduler, SchedKind::Heap);
/// assert_eq!(opts.workers, Some(4));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunOptions {
    /// Pending-event-set implementation for every experiment.
    pub scheduler: SchedKind,
    /// Simultaneous-event ordering policy for every experiment.
    /// Measurements must not depend on it (a claim `cedar-check`
    /// verifies by perturbation); like the fault plan it is typed only
    /// — no environment variable sets it.
    pub tiebreak: TieBreak,
    /// Worker-pool width for suite grids (`None` = available
    /// parallelism).
    pub workers: Option<usize>,
    /// Workload shrink divisor (1 = publication scale).
    pub shrink: u32,
    /// Benchmark smoke mode: one iteration, no warmup.
    pub smoke: bool,
    /// Benchmark timed-iteration override (`None` = harness default).
    pub bench_iters: Option<u32>,
    /// Benchmark warmup-iteration override (`None` = harness default).
    pub bench_warmup: Option<u32>,
    /// Self-telemetry level.
    pub telemetry: TelemetryLevel,
    /// Output directory for manifests, bench JSON and telemetry streams
    /// (`None` = the workspace-root `results/`).
    pub output_dir: Option<PathBuf>,
    /// Fault-injection campaign applied to every experiment (the empty
    /// default injects nothing and leaves results byte-identical). A
    /// deliberate exception to the host-vs-machine split: the plan
    /// *does* change what is simulated, so it participates in
    /// [`fingerprint_seed`](Self::fingerprint_seed), but it is campaign
    /// tooling (sweeps, attribution tests) rather than a property of the
    /// modelled Cedar, so it travels with the run options and is applied
    /// to each cell's `SimConfig` by the suite runners. Typed only — no
    /// environment variable sets it.
    pub faults: FaultPlan,
    /// How the campaign layer uses the content-addressed run cache.
    /// Wall-clock-only (results are deterministic), so it is excluded
    /// from [`fingerprint_seed`](Self::fingerprint_seed).
    pub cache: CacheMode,
    /// Capacity of the in-memory hot tier layered over the disk cache,
    /// in decoded runs (0 = no tier, the default). Only meaningful when
    /// `cache` is not `Off`. Like the cache mode it is wall-clock-only
    /// and typed-only — no environment variable sets it, and it is
    /// excluded from [`fingerprint_seed`](Self::fingerprint_seed).
    pub cache_hot: usize,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            scheduler: SchedKind::default(),
            tiebreak: TieBreak::default(),
            workers: None,
            shrink: 1,
            smoke: false,
            bench_iters: None,
            bench_warmup: None,
            telemetry: TelemetryLevel::default(),
            output_dir: None,
            faults: FaultPlan::default(),
            cache: CacheMode::default(),
            cache_hot: 0,
        }
    }
}

impl RunOptions {
    /// Reads the whole configuration from the environment. This is the
    /// single sanctioned configuration env-read in the workspace (the
    /// golden-update hook `UPDATE_GOLDEN` is the other).
    ///
    /// | variable        | field         | accepted values              |
    /// |-----------------|---------------|------------------------------|
    /// | `CEDAR_SCHED`   | `scheduler`   | `heap`, `calendar` (default) |
    /// | `CEDAR_WORKERS` | `workers`     | integer ≥ 1                  |
    /// | `CEDAR_SHRINK`  | `shrink`      | integer ≥ 1                  |
    /// | `CEDAR_OBS`     | `telemetry`   | `off`, `summary`, `full`     |
    /// | `BENCH_SMOKE`   | `smoke`       | `1`                          |
    /// | `BENCH_ITERS`   | `bench_iters` | integer ≥ 1                  |
    /// | `BENCH_WARMUP`  | `bench_warmup`| integer ≥ 0                  |
    /// | `BENCH_JSON_DIR`| `output_dir`  | a directory path             |
    /// | `CEDAR_CACHE`   | `cache`       | `off`, `rw`, `ro`, `refresh` |
    ///
    /// # Panics
    ///
    /// Panics on a malformed `CEDAR_SCHED`, `CEDAR_OBS` or
    /// `CEDAR_CACHE`, so a typo fails loudly instead of silently
    /// running the wrong configuration.
    pub fn from_env() -> RunOptions {
        let var = |name: &str| std::env::var(name).ok().filter(|v| !v.is_empty());
        RunOptions {
            scheduler: var("CEDAR_SCHED")
                .map(|v| v.parse().unwrap_or_else(|e| panic!("CEDAR_SCHED: {e}")))
                .unwrap_or_default(),
            tiebreak: TieBreak::default(),
            workers: var("CEDAR_WORKERS")
                .and_then(|v| v.parse().ok())
                .filter(|&n: &usize| n >= 1),
            shrink: var("CEDAR_SHRINK")
                .and_then(|v| v.parse().ok())
                .filter(|&n: &u32| n >= 1)
                .unwrap_or(1),
            smoke: var("BENCH_SMOKE").map(|v| v == "1").unwrap_or(false),
            bench_iters: var("BENCH_ITERS").and_then(|v| v.parse().ok()),
            bench_warmup: var("BENCH_WARMUP").and_then(|v| v.parse().ok()),
            telemetry: var("CEDAR_OBS")
                .map(|v| v.parse().unwrap_or_else(|e| panic!("CEDAR_OBS: {e}")))
                .unwrap_or_default(),
            output_dir: var("BENCH_JSON_DIR").map(PathBuf::from),
            faults: FaultPlan::default(),
            cache: var("CEDAR_CACHE")
                .map(|v| v.parse().unwrap_or_else(|e| panic!("CEDAR_CACHE: {e}")))
                .unwrap_or_default(),
            cache_hot: 0,
        }
    }

    /// Overrides the event scheduler (builder style).
    pub fn with_scheduler(mut self, kind: SchedKind) -> Self {
        self.scheduler = kind;
        self
    }

    /// Overrides the simultaneous-event ordering policy (builder
    /// style). `TieBreak::Fifo` restores the default order.
    pub fn with_tiebreak(mut self, tiebreak: TieBreak) -> Self {
        self.tiebreak = tiebreak;
        self
    }

    /// Bounds the suite worker pool (builder style).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Sets the workload shrink divisor (builder style).
    pub fn with_shrink(mut self, shrink: u32) -> Self {
        self.shrink = shrink.max(1);
        self
    }

    /// Enables benchmark smoke mode (builder style).
    pub fn with_smoke(mut self) -> Self {
        self.smoke = true;
        self
    }

    /// Overrides benchmark timed iterations (builder style).
    pub fn with_bench_iters(mut self, iters: u32) -> Self {
        self.bench_iters = Some(iters.max(1));
        self
    }

    /// Overrides benchmark warmup iterations (builder style).
    pub fn with_bench_warmup(mut self, warmup: u32) -> Self {
        self.bench_warmup = Some(warmup);
        self
    }

    /// Sets the telemetry level (builder style).
    pub fn with_telemetry(mut self, level: TelemetryLevel) -> Self {
        self.telemetry = level;
        self
    }

    /// Redirects output files (builder style).
    pub fn with_output_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.output_dir = Some(dir.into());
        self
    }

    /// Applies a fault-injection campaign to every experiment (builder
    /// style). `FaultPlan::default()` restores the unperturbed run.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Sets the run-cache mode (builder style).
    pub fn with_cache(mut self, mode: CacheMode) -> Self {
        self.cache = mode;
        self
    }

    /// Sets the in-memory hot-tier capacity layered over the disk
    /// cache, in decoded runs (builder style; 0 disables the tier).
    pub fn with_cache_hot(mut self, capacity: usize) -> Self {
        self.cache_hot = capacity;
        self
    }

    /// The stable fingerprint seed: every field that changes *what is
    /// simulated or how results are produced*, in a fixed textual form.
    /// Wall-clock-only knobs (worker count, bench iterations, output
    /// directory, telemetry level, cache mode) are deliberately excluded
    /// — two runs differing only in those produce identical
    /// measurements, and their manifests carry the same fingerprint.
    pub fn fingerprint_seed(&self) -> String {
        format!(
            "sched={};tie={};shrink={};smoke={};faults={}",
            self.scheduler.as_str(),
            self.tiebreak,
            self.shrink,
            self.smoke,
            self.faults.fingerprint()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_old_env_defaults() {
        let o = RunOptions::default();
        assert_eq!(o.scheduler, SchedKind::Calendar);
        assert_eq!(o.workers, None);
        assert_eq!(o.shrink, 1);
        assert!(!o.smoke);
        assert_eq!(o.telemetry, TelemetryLevel::Summary);
        assert_eq!(o.output_dir, None);
    }

    #[test]
    fn builders_are_total() {
        let o = RunOptions::default()
            .with_scheduler(SchedKind::Heap)
            .with_workers(3)
            .with_shrink(0) // clamped to 1
            .with_smoke()
            .with_bench_iters(0) // clamped to 1
            .with_bench_warmup(2)
            .with_telemetry(TelemetryLevel::Off)
            .with_output_dir("/tmp/x");
        assert_eq!(o.scheduler, SchedKind::Heap);
        assert_eq!(o.workers, Some(3));
        assert_eq!(o.shrink, 1);
        assert!(o.smoke);
        assert_eq!(o.bench_iters, Some(1));
        assert_eq!(o.bench_warmup, Some(2));
        assert_eq!(o.telemetry, TelemetryLevel::Off);
        assert_eq!(o.output_dir, Some(PathBuf::from("/tmp/x")));
    }

    #[test]
    fn telemetry_levels_parse_and_roundtrip() {
        for level in [
            TelemetryLevel::Off,
            TelemetryLevel::Summary,
            TelemetryLevel::Full,
        ] {
            assert_eq!(level.as_str().parse::<TelemetryLevel>().unwrap(), level);
        }
        assert!("verbose".parse::<TelemetryLevel>().is_err());
    }

    #[test]
    fn fault_plan_changes_the_fingerprint() {
        let a = RunOptions::default();
        assert!(a.faults.is_empty());
        assert!(a.fingerprint_seed().ends_with("faults=none"));
        let b = RunOptions::default().with_faults(FaultPlan::canonical());
        assert_ne!(a.fingerprint_seed(), b.fingerprint_seed());
    }

    #[test]
    fn fingerprint_ignores_wall_clock_only_knobs() {
        let a = RunOptions::default();
        let b = RunOptions::default()
            .with_workers(64)
            .with_telemetry(TelemetryLevel::Full)
            .with_output_dir("/elsewhere")
            .with_cache(CacheMode::ReadWrite)
            .with_cache_hot(256);
        assert_eq!(a.fingerprint_seed(), b.fingerprint_seed());
        let c = RunOptions::default().with_scheduler(SchedKind::Heap);
        assert_ne!(a.fingerprint_seed(), c.fingerprint_seed());
    }

    #[test]
    fn tiebreak_is_typed_only_and_fingerprinted() {
        let a = RunOptions::default();
        assert_eq!(a.tiebreak, TieBreak::Fifo);
        // Like the scheduler, the policy names *how the run was
        // produced*, so it participates in the manifest fingerprint
        // even though measurements are invariant to it.
        let b = RunOptions::default().with_tiebreak(TieBreak::Shuffle(7));
        assert_ne!(a.fingerprint_seed(), b.fingerprint_seed());
        assert!(b.fingerprint_seed().contains("tie=shuffle:0x7"));
    }

    #[test]
    fn cache_modes_parse_and_roundtrip() {
        for mode in [
            CacheMode::Off,
            CacheMode::ReadWrite,
            CacheMode::ReadOnly,
            CacheMode::Refresh,
        ] {
            assert_eq!(mode.as_str().parse::<CacheMode>().unwrap(), mode);
        }
        assert_eq!("on".parse::<CacheMode>().unwrap(), CacheMode::ReadWrite);
        assert!("sometimes".parse::<CacheMode>().is_err());
    }

    #[test]
    fn cache_mode_read_write_capabilities() {
        assert!(!CacheMode::Off.reads() && !CacheMode::Off.writes());
        assert!(CacheMode::ReadWrite.reads() && CacheMode::ReadWrite.writes());
        assert!(CacheMode::ReadOnly.reads() && !CacheMode::ReadOnly.writes());
        assert!(!CacheMode::Refresh.reads() && CacheMode::Refresh.writes());
        assert_eq!(CacheMode::default(), CacheMode::Off);
    }
}
