//! # cedar-apps — workload models of the Perfect Benchmark applications
//!
//! The paper measures five "representative compute-intensive, scientific
//! applications from the Perfect Benchmark Suite" \[12\], compiled by the
//! Cedar Fortran parallelizer \[13\]: **FLO52**, **ARC2D**, **MDG**,
//! **OCEAN** and **ADM** (§2). We do not have the Fortran sources, the
//! KAP-parallelized loop nests, or a machine to run them on — so each
//! application is modelled as the *loop structure* the compiler produced:
//! a sequence of serial sections, main-cluster-only loops, hierarchical
//! SDOALL/CDOALL loops and flat XDOALL loops, with per-iteration compute
//! cost and strided global-memory vector traffic.
//!
//! Three structural facts from the paper anchor each model:
//!
//! * FLO52 uses **only** the hierarchical construct; ADM uses **only**
//!   the flat XDOALL; the other three use both (§2).
//! * Every application also has "a few main cluster-only loops" (§2).
//! * The per-application parallelism profile (Table 1 concurrency,
//!   Table 3 parallel-loop concurrency) constrains iteration counts and
//!   granularity; the contention profile (Table 4) constrains vector
//!   traffic density.
//!
//! Iteration counts are scaled ~1000× below the real runs so a full
//! configuration sweep simulates in minutes; all reported quantities are
//! ratios, which the scaling preserves (see DESIGN.md §2). Calibration
//! constants live in each application's `spec()` and are annotated with
//! the paper figure they target.
//!
//! ## Example
//!
//! ```
//! use cedar_apps::{app_by_name, perfect_suite};
//!
//! assert_eq!(perfect_suite().len(), 5);
//! let flo52 = app_by_name("flo52").unwrap();
//! assert!(flo52.uses_sdoall() && !flo52.uses_xdoall()); // §2
//! ```

pub mod adm;
pub mod arc2d;
pub mod builder;
pub mod flo52;
pub mod mdg;
pub mod ocean;
pub mod spec;
pub mod suite;
pub mod synthetic;

pub use builder::AppBuilder;
pub use spec::{AccessPattern, AppSpec, ArraySpec, BodySpec, Phase};
pub use suite::{app_by_name, perfect_suite};
