//! FLO52 — transonic flow past an airfoil (multigrid Euler solver).
//!
//! Paper anchors for this model:
//!
//! * "FLO52 only uses the hierarchical SDOALL/CDOALL construct" (§2).
//! * Poorest speedup of the suite: 8.40 at 32p with average concurrency
//!   14.82 (Table 1) — driven by modest loop parallelism and a serial
//!   fraction.
//! * The **highest contention overhead**: 17–27% of completion time
//!   (Table 4) — its loop bodies are vector-heavy relative to compute.
//! * Barrier wait reaches the top of the paper's 7–16% range and helper
//!   wait is ~34% of completion time at 32p (§6).
//!
//! The model: 30 multigrid time steps, each a run of six SDOALL stages
//! (residual evaluation, flux updates, grid transfers) whose inner
//! cluster loops are *not* multiples of 8 iterations (imbalance keeps the
//! parallel-loop concurrency near Table 3's ≈6.3–6.9), one small
//! main-cluster-only smoothing loop, and a serial section (convergence
//! bookkeeping).

use crate::builder::AppBuilder;
use crate::spec::{AccessPattern, AppSpec, BodySpec};

/// Builds the FLO52 model.
pub fn spec() -> AppSpec {
    AppBuilder::new("FLO52")
        .array("w (state)", 256 * 1024)
        .array("x (mesh)", 256 * 1024)
        .array("flux", 256 * 1024)
        .array("residual", 256 * 1024)
        .repeat(12, |b| {
            let mut b = b
                // Convergence check / coarse-grid bookkeeping: serial.
                .serial_with(10_000, vec![AccessPattern::sweep(3, 8)]);
            // Three multigrid stages. The CEs are pipelined vector
            // processors (§2): a body is two 80-word operand streams with
            // little scalar work around them, so parallel loop execution
            // pushes the network toward saturation — this is what makes
            // FLO52 the contention champion of Table 4 (17-27% of CT).
            for stage in 0..3usize {
                let (src, dst) = match stage % 3 {
                    0 => (0, 2),
                    1 => (2, 3),
                    _ => (3, 0),
                };
                b = b.sdoall(
                    10, // 10 chunks over 4 clusters: uneven split
                    34, // 34 inner iterations over 8 CEs: imbalanced
                    BodySpec::compute(150)
                        .with_jitter(12)
                        .with_access(AccessPattern::sweep(src, 80))
                        .with_access(AccessPattern::sweep(dst, 80)),
                );
            }
            // Boundary-condition smoothing: main-cluster-only loop.
            b.cluster_loop(
                20,
                BodySpec::compute(300).with_access(AccessPattern::sweep(1, 12)),
            )
        })
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flo52_uses_only_the_hierarchical_construct() {
        let s = spec();
        assert!(s.uses_sdoall());
        assert!(!s.uses_xdoall(), "§2: FLO52 has no xdoall loops");
    }

    #[test]
    fn flo52_has_cluster_only_loops_and_serial_sections() {
        let flat = spec().flattened();
        assert!(flat
            .iter()
            .any(|p| matches!(p, crate::spec::Phase::ClusterLoop { .. })));
        assert!(flat
            .iter()
            .any(|p| matches!(p, crate::spec::Phase::Serial { .. })));
    }

    #[test]
    fn flo52_inner_loops_are_imbalanced_on_eight_ces() {
        for p in spec().flattened() {
            if let crate::spec::Phase::Sdoall { inner, .. } = p {
                assert_ne!(inner % 8, 0, "imbalance drives Table 3's ~6.5");
            }
        }
    }

    #[test]
    fn flo52_validates() {
        spec().validate();
    }
}
