//! The application-model DSL.

use cedar_sim::Cycles;

/// A global-memory array the application operates on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArraySpec {
    /// Human-readable name (for documentation and traces).
    pub name: &'static str,
    /// Size in bytes. The layout engine page-aligns each array.
    pub bytes: u64,
}

/// One strided access a loop body (or serial section) performs against an
/// application array. The effective base address for iteration `i` is
///
/// `array_base + (base_offset + i * offset_per_iter) * 8  (mod array size)`
///
/// so successive iterations walk the array and the run's first touches of
/// each page trigger demand paging.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessPattern {
    /// Index into [`AppSpec::arrays`].
    pub array: usize,
    /// Double words transferred per execution.
    pub words: u32,
    /// Element stride in double words (1 = unit stride).
    pub stride_dwords: u64,
    /// Per-iteration base advance in double words.
    pub offset_per_iter: u64,
    /// Fixed base offset in double words.
    pub base_offset: u64,
}

impl AccessPattern {
    /// A unit-stride sweep: iteration `i` reads `words` consecutive
    /// double words starting `i * words` into the array.
    pub fn sweep(array: usize, words: u32) -> Self {
        AccessPattern {
            array,
            words,
            stride_dwords: 1,
            offset_per_iter: words as u64,
            base_offset: 0,
        }
    }

    /// A strided access (e.g. walking a matrix column).
    pub fn strided(array: usize, words: u32, stride_dwords: u64) -> Self {
        AccessPattern {
            array,
            words,
            stride_dwords,
            offset_per_iter: 1,
            base_offset: 0,
        }
    }
}

/// The work of one parallel-loop iteration (or serial section slice).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BodySpec {
    /// Computation before/around the memory traffic.
    pub compute: Cycles,
    /// Per-execution uniform jitter applied to `compute`, in percent
    /// (models data-dependent iteration cost; drives load imbalance).
    pub jitter_pct: u8,
    /// Global-memory vector accesses this body performs.
    pub accesses: Vec<AccessPattern>,
}

impl BodySpec {
    /// A pure-compute body.
    pub fn compute(cycles: u64) -> Self {
        BodySpec {
            compute: Cycles(cycles),
            jitter_pct: 0,
            accesses: Vec::new(),
        }
    }

    /// Adds an access to the body (builder style).
    pub fn with_access(mut self, a: AccessPattern) -> Self {
        self.accesses.push(a);
        self
    }

    /// Sets the compute jitter (builder style).
    pub fn with_jitter(mut self, pct: u8) -> Self {
        self.jitter_pct = pct;
        self
    }

    /// Total double words this body moves per execution.
    pub fn words(&self) -> u64 {
        self.accesses.iter().map(|a| a.words as u64).sum()
    }
}

/// One phase of the application's execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Phase {
    /// Serial code on the main task's lead CE.
    Serial {
        /// Compute cycles.
        work: Cycles,
        /// Global-memory accesses performed during the section.
        accesses: Vec<AccessPattern>,
    },
    /// A main-cluster-only `cdoall` (no outer spread loop).
    ClusterLoop {
        /// Iterations, spread over the main cluster's CEs.
        iters: u32,
        /// Per-iteration work.
        body: BodySpec,
    },
    /// A hierarchical SDOALL/CDOALL nest: `outer` spread iterations are
    /// self-scheduled one at a time to cluster tasks; each expands into
    /// `inner` cluster iterations.
    Sdoall {
        /// Outer (spread) iterations.
        outer: u32,
        /// Inner (cluster) iterations per outer iteration.
        inner: u32,
        /// Per-inner-iteration work.
        body: BodySpec,
    },
    /// A flat XDOALL: all CEs of all clusters compete for iterations.
    Xdoall {
        /// Iterations.
        iters: u32,
        /// Per-iteration work.
        body: BodySpec,
    },
    /// A main-cluster DOACROSS: a parallel loop whose iterations each
    /// contain a region serialized in iteration order (§2: "to make it
    /// possible to serialize regions within a parallel loop").
    Doacross {
        /// Iterations, spread over the main cluster's CEs.
        iters: u32,
        /// Parallel part of each iteration.
        body: BodySpec,
        /// Serialized-region work, executed in iteration order.
        serial_region: Cycles,
    },
    /// A repeated sub-sequence (time-step loops).
    Repeat {
        /// Repetition count.
        times: u32,
        /// Phases repeated each time step.
        phases: Vec<Phase>,
    },
}

/// A complete application model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppSpec {
    /// Application name as the paper's tables print it.
    pub name: &'static str,
    /// Global arrays.
    pub arrays: Vec<ArraySpec>,
    /// Top-level phase sequence.
    pub phases: Vec<Phase>,
}

impl AppSpec {
    /// Expands `Repeat` phases into a flat phase list.
    pub fn flattened(&self) -> Vec<Phase> {
        fn walk(phases: &[Phase], out: &mut Vec<Phase>) {
            for p in phases {
                match p {
                    Phase::Repeat { times, phases } => {
                        for _ in 0..*times {
                            walk(phases, out);
                        }
                    }
                    other => out.push(other.clone()),
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.phases, &mut out);
        out
    }

    /// Checks structural invariants, returning the first violation as a
    /// human-readable message: an access referencing a missing array, an
    /// access larger than its array, or a zero-iteration loop. The
    /// fallible twin of [`validate`](Self::validate) — callers with a
    /// typed error surface (the campaign service) map the message into
    /// `CedarError::ConfigInvalid` instead of unwinding.
    pub fn try_validate(&self) -> Result<(), String> {
        let check_access = |a: &AccessPattern| -> Result<(), String> {
            let arr = self.arrays.get(a.array).ok_or_else(|| {
                format!("{}: access references missing array {}", self.name, a.array)
            })?;
            let span = (a.words as u64) * a.stride_dwords * 8;
            if span > arr.bytes {
                return Err(format!(
                    "{}: access span {} exceeds array '{}' ({} bytes)",
                    self.name, span, arr.name, arr.bytes
                ));
            }
            Ok(())
        };
        let check_accesses =
            |accesses: &[AccessPattern]| accesses.iter().try_for_each(check_access);
        let check_body = |b: &BodySpec| check_accesses(&b.accesses);
        fn walk<'a>(
            phases: &'a [Phase],
            f: &mut dyn FnMut(&'a Phase) -> Result<(), String>,
        ) -> Result<(), String> {
            for p in phases {
                f(p)?;
                if let Phase::Repeat { phases, .. } = p {
                    walk(phases, f)?;
                }
            }
            Ok(())
        }
        walk(&self.phases, &mut |p| match p {
            Phase::Serial { accesses, .. } => check_accesses(accesses),
            Phase::ClusterLoop { iters, body } => {
                if *iters == 0 {
                    return Err(format!("{}: zero-iteration cluster loop", self.name));
                }
                check_body(body)
            }
            Phase::Sdoall { outer, inner, body } => {
                if *outer == 0 || *inner == 0 {
                    return Err(format!(
                        "{}: degenerate sdoall {}x{}",
                        self.name, outer, inner
                    ));
                }
                check_body(body)
            }
            Phase::Xdoall { iters, body } => {
                if *iters == 0 {
                    return Err(format!("{}: zero-iteration xdoall", self.name));
                }
                check_body(body)
            }
            Phase::Doacross { iters, body, .. } => {
                if *iters == 0 {
                    return Err(format!("{}: zero-iteration doacross", self.name));
                }
                check_body(body)
            }
            Phase::Repeat { times, .. } => {
                if *times == 0 {
                    return Err(format!("{}: zero-repetition phase", self.name));
                }
                Ok(())
            }
        })
    }

    /// Validates structural invariants.
    ///
    /// # Panics
    ///
    /// Panics with [`try_validate`](Self::try_validate)'s message on the
    /// first violation. Kept for model constructors and tests where a
    /// malformed spec is a programming error.
    pub fn validate(&self) {
        if let Err(msg) = self.try_validate() {
            panic!("{msg}");
        }
    }

    /// A reduced copy for fast tests: every `Repeat` count is divided by
    /// `factor` (minimum 1). Loop iteration counts and granularity are
    /// untouched, so per-loop behaviour is preserved.
    pub fn shrunk(&self, factor: u32) -> AppSpec {
        fn shrink(phases: &[Phase], factor: u32) -> Vec<Phase> {
            phases
                .iter()
                .map(|p| match p {
                    Phase::Repeat { times, phases } => Phase::Repeat {
                        times: (times / factor).max(1),
                        phases: shrink(phases, factor),
                    },
                    other => other.clone(),
                })
                .collect()
        }
        AppSpec {
            name: self.name,
            arrays: self.arrays.clone(),
            phases: shrink(&self.phases, factor),
        }
    }

    /// Counts total loop bodies executed (for test budgeting).
    pub fn total_bodies(&self) -> u64 {
        self.flattened()
            .iter()
            .map(|p| match p {
                Phase::Serial { .. } => 0,
                Phase::ClusterLoop { iters, .. } => *iters as u64,
                Phase::Sdoall { outer, inner, .. } => *outer as u64 * *inner as u64,
                Phase::Xdoall { iters, .. } => *iters as u64,
                Phase::Doacross { iters, .. } => *iters as u64,
                Phase::Repeat { .. } => unreachable!("flattened"),
            })
            .sum()
    }

    /// `true` if the app uses the given construct anywhere.
    pub fn uses_xdoall(&self) -> bool {
        self.flattened()
            .iter()
            .any(|p| matches!(p, Phase::Xdoall { .. }))
    }

    /// `true` if the app uses the hierarchical construct anywhere.
    pub fn uses_sdoall(&self) -> bool {
        self.flattened()
            .iter()
            .any(|p| matches!(p, Phase::Sdoall { .. }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> AppSpec {
        AppSpec {
            name: "TINY",
            arrays: vec![ArraySpec {
                name: "a",
                bytes: 64 * 1024,
            }],
            phases: vec![Phase::Repeat {
                times: 4,
                phases: vec![
                    Phase::Serial {
                        work: Cycles(100),
                        accesses: vec![],
                    },
                    Phase::Sdoall {
                        outer: 2,
                        inner: 3,
                        body: BodySpec::compute(50).with_access(AccessPattern::sweep(0, 8)),
                    },
                ],
            }],
        }
    }

    #[test]
    fn flatten_expands_repeats() {
        let flat = tiny().flattened();
        assert_eq!(flat.len(), 8); // 4 x (serial + sdoall)
        assert!(matches!(flat[0], Phase::Serial { .. }));
        assert!(matches!(flat[1], Phase::Sdoall { .. }));
    }

    #[test]
    fn total_bodies_counts_inner_iterations() {
        assert_eq!(tiny().total_bodies(), 4 * 2 * 3);
    }

    #[test]
    fn construct_usage_flags() {
        let t = tiny();
        assert!(t.uses_sdoall());
        assert!(!t.uses_xdoall());
    }

    #[test]
    fn shrunk_divides_repeat_counts() {
        let s = tiny().shrunk(4);
        assert_eq!(s.total_bodies(), 2 * 3);
        let s1 = tiny().shrunk(100);
        assert_eq!(s1.total_bodies(), 2 * 3, "repeat count clamps at 1");
    }

    #[test]
    fn validate_accepts_well_formed_spec() {
        tiny().validate();
    }

    #[test]
    fn try_validate_returns_the_violation() {
        assert!(tiny().try_validate().is_ok());
        let mut t = tiny();
        t.phases = vec![Phase::Xdoall {
            iters: 0,
            body: BodySpec::compute(1),
        }];
        let msg = t.try_validate().unwrap_err();
        assert!(msg.contains("zero-iteration xdoall"), "{msg}");
    }

    #[test]
    #[should_panic(expected = "missing array")]
    fn validate_rejects_bad_array_reference() {
        let mut t = tiny();
        t.phases = vec![Phase::Serial {
            work: Cycles(1),
            accesses: vec![AccessPattern::sweep(9, 4)],
        }];
        t.validate();
    }

    #[test]
    #[should_panic(expected = "exceeds array")]
    fn validate_rejects_oversized_access() {
        let mut t = tiny();
        t.phases = vec![Phase::Serial {
            work: Cycles(1),
            accesses: vec![AccessPattern::sweep(0, 100_000)],
        }];
        t.validate();
    }

    #[test]
    fn body_words_sums_accesses() {
        let b = BodySpec::compute(10)
            .with_access(AccessPattern::sweep(0, 8))
            .with_access(AccessPattern::strided(0, 4, 2));
        assert_eq!(b.words(), 12);
    }

    #[test]
    fn access_constructors() {
        let s = AccessPattern::sweep(1, 16);
        assert_eq!(s.offset_per_iter, 16);
        assert_eq!(s.stride_dwords, 1);
        let t = AccessPattern::strided(0, 8, 4);
        assert_eq!(t.stride_dwords, 4);
        assert_eq!(t.offset_per_iter, 1);
    }
}
