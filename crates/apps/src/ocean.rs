//! OCEAN — 2-D ocean basin simulation (spectral/FFT-based solver).
//!
//! Paper anchors:
//!
//! * "OCEAN shows near linear speedups upto 8 processors, but beyond 8
//!   processors the speedup becomes sub-linear due to decreasing level
//!   of available concurrency" (§3.1) — speedup 7.16 at 8p but only
//!   15.58 at 32p (Table 1).
//! * The *lowest* parallel-loop concurrency at 32p: ≈5.6 per cluster
//!   (Table 3) — its FFT stages have only 8 outer chunks and
//!   12-iteration inner loops, which starve 4 clusters × 8 CEs.
//! * Contention overhead is moderate and *non-monotone*: 8.0% at 16p
//!   but 7.4% at 32p (Table 4) — at 32p the starved loops leave the
//!   network under-utilized part of the time.
//!
//! The model: 50 time steps; five SDOALL transform stages with outer=8
//! (exactly one chunk per cluster at 16p, two at 32p — the concurrency
//! cliff), a flat XDOALL field update, a boundary cluster loop and a
//! serial section.

use crate::builder::AppBuilder;
use crate::spec::{AccessPattern, AppSpec, BodySpec};

/// Builds the OCEAN model.
pub fn spec() -> AppSpec {
    AppBuilder::new("OCEAN")
        .array("psi", 512 * 1024)
        .array("vort", 512 * 1024)
        .array("fft work", 256 * 1024)
        .array("bc", 128 * 1024)
        .repeat(25, |b| {
            let mut b = b.serial_with(6_000, vec![AccessPattern::sweep(3, 8)]);
            // FFT stages: few outer chunks, modest inner loops.
            for stage in 0..5usize {
                b = b.sdoall(
                    8,  // one chunk per cluster at 16p; starves 32p
                    12, // 12 over 8 CEs: 1.5 rounds, concurrency ~5-6
                    BodySpec::compute(2_000)
                        .with_jitter(8)
                        .with_access(AccessPattern::sweep(stage % 3, 12)),
                );
            }
            // Field update: flat xdoall.
            b = b.xdoall(
                32,
                BodySpec::compute(1_800)
                    .with_jitter(6)
                    .with_access(AccessPattern::sweep(1, 12)),
            );
            // Boundary relaxation on the main cluster.
            b = b.cluster_loop(
                12,
                BodySpec::compute(400).with_access(AccessPattern::sweep(3, 8)),
            );
            // Shoreline update: an ordered recurrence along the coast
            // (CDOACROSS without an outer spread loop, §2).
            b.doacross(
                8,
                BodySpec::compute(300).with_access(AccessPattern::sweep(3, 8)),
                80,
            )
        })
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ocean_uses_both_constructs() {
        let s = spec();
        assert!(s.uses_sdoall());
        assert!(s.uses_xdoall());
    }

    #[test]
    fn ocean_outer_chunks_starve_four_clusters() {
        for p in spec().flattened() {
            if let crate::spec::Phase::Sdoall { outer, .. } = p {
                assert_eq!(outer, 8, "8 chunks over 4 clusters is the cliff");
            }
        }
    }

    #[test]
    fn ocean_inner_loops_are_imbalanced() {
        for p in spec().flattened() {
            if let crate::spec::Phase::Sdoall { inner, .. } = p {
                assert_ne!(inner % 8, 0);
            }
        }
    }

    #[test]
    fn ocean_validates() {
        spec().validate();
    }
}
