//! Synthetic workload generators for ablation studies and benches.

use crate::builder::AppBuilder;
use crate::spec::{AccessPattern, AppSpec, BodySpec};

/// A uniform loop-parallel workload: `steps` repetitions of
/// `loops_per_step` identical SDOALL nests.
///
/// Useful for sweeping one parameter (granularity, traffic density,
/// iteration balance) while everything else is held fixed.
pub fn uniform_sdoall(
    steps: u32,
    loops_per_step: u32,
    outer: u32,
    inner: u32,
    compute: u64,
    words: u32,
) -> AppSpec {
    let mut b = AppBuilder::new("SYNTH-SDOALL").array("data", 1024 * 1024);
    b = b.repeat(steps, |mut rb| {
        rb = rb.serial(1_000);
        for _ in 0..loops_per_step {
            let mut body = BodySpec::compute(compute);
            if words > 0 {
                body = body.with_access(AccessPattern::sweep(0, words));
            }
            rb = rb.sdoall(outer, inner, body);
        }
        rb
    });
    b.build()
}

/// A uniform flat-XDOALL workload, the natural counterpart for the
/// "rewrite xdoall as sdoall" ablation §6 suggests.
pub fn uniform_xdoall(
    steps: u32,
    loops_per_step: u32,
    iters: u32,
    compute: u64,
    words: u32,
) -> AppSpec {
    let mut b = AppBuilder::new("SYNTH-XDOALL").array("data", 1024 * 1024);
    b = b.repeat(steps, |mut rb| {
        rb = rb.serial(1_000);
        for _ in 0..loops_per_step {
            let mut body = BodySpec::compute(compute);
            if words > 0 {
                body = body.with_access(AccessPattern::sweep(0, words));
            }
            rb = rb.xdoall(iters, body);
        }
        rb
    });
    b.build()
}

/// A lock-hammering hot-spot workload (Pfister & Norton \[15\]): flat
/// loops whose bodies are nearly empty, so completion time is dominated
/// by the contended iteration lock in global memory.
pub fn hotspot(steps: u32, iters_per_loop: u32) -> AppSpec {
    AppBuilder::new("SYNTH-HOTSPOT")
        .array("data", 64 * 1024)
        .repeat(steps, |b| b.xdoall(iters_per_loop, BodySpec::compute(20)))
        .build()
}

/// A DOACROSS pipeline: parallel bodies with an ordered serialized
/// region per iteration (wavefront/recurrence codes).
pub fn doacross_pipeline(steps: u32, iters: u32, compute: u64, region: u64) -> AppSpec {
    AppBuilder::new("SYNTH-DOACROSS")
        .array("data", 256 * 1024)
        .repeat(steps, |b| {
            b.doacross(
                iters,
                BodySpec::compute(compute).with_access(AccessPattern::sweep(0, 8)),
                region,
            )
        })
        .build()
}

/// A memory-streaming workload: large unit-stride vector bursts with
/// minimal compute, stressing the network and module interleaving.
pub fn streaming(steps: u32, outer: u32, inner: u32, words: u32) -> AppSpec {
    AppBuilder::new("SYNTH-STREAM")
        .array("src", 2 * 1024 * 1024)
        .array("dst", 2 * 1024 * 1024)
        .repeat(steps, |b| {
            b.sdoall(
                outer,
                inner,
                BodySpec::compute(10)
                    .with_access(AccessPattern::sweep(0, words))
                    .with_access(AccessPattern::sweep(1, words)),
            )
        })
        .build()
}

/// A pathological-stride workload: every access lands on the same memory
/// module (stride = module count), defeating the interleaving.
pub fn module_conflict(steps: u32, outer: u32, inner: u32, words: u32) -> AppSpec {
    AppBuilder::new("SYNTH-CONFLICT")
        .array("data", 4 * 1024 * 1024)
        .repeat(steps, |b| {
            b.sdoall(
                outer,
                inner,
                BodySpec::compute(10).with_access(AccessPattern::strided(0, words, 32)),
            )
        })
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_produce_valid_specs() {
        uniform_sdoall(2, 2, 4, 8, 100, 8).validate();
        uniform_xdoall(2, 2, 16, 100, 8).validate();
        hotspot(2, 64).validate();
        streaming(1, 4, 8, 32).validate();
        module_conflict(1, 4, 8, 16).validate();
    }

    #[test]
    fn hotspot_bodies_are_tiny() {
        let h = hotspot(1, 32);
        for p in h.flattened() {
            if let crate::spec::Phase::Xdoall { body, .. } = p {
                assert!(body.compute.0 < 100);
                assert!(body.accesses.is_empty());
            }
        }
    }

    #[test]
    fn conflict_stride_hits_one_module() {
        let c = module_conflict(1, 1, 1, 16);
        for p in c.flattened() {
            if let crate::spec::Phase::Sdoall { body, .. } = p {
                assert_eq!(body.accesses[0].stride_dwords, 32);
            }
        }
    }
}
