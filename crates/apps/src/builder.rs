//! Fluent construction of application models.

use cedar_sim::Cycles;

use crate::spec::{AccessPattern, AppSpec, ArraySpec, BodySpec, Phase};

/// Builds an [`AppSpec`] incrementally.
///
/// # Example
///
/// ```
/// use cedar_apps::{AppBuilder, AccessPattern, BodySpec};
///
/// let app = AppBuilder::new("DEMO")
///     .array("grid", 256 * 1024)
///     .serial(5_000)
///     .sdoall(8, 16, BodySpec::compute(200).with_access(AccessPattern::sweep(0, 8)))
///     .build();
/// assert_eq!(app.name, "DEMO");
/// assert_eq!(app.total_bodies(), 8 * 16);
/// ```
#[derive(Debug, Clone)]
pub struct AppBuilder {
    name: &'static str,
    arrays: Vec<ArraySpec>,
    phases: Vec<Phase>,
}

impl AppBuilder {
    /// Starts a new application model.
    pub fn new(name: &'static str) -> Self {
        AppBuilder {
            name,
            arrays: Vec::new(),
            phases: Vec::new(),
        }
    }

    /// Declares a global array; access patterns reference arrays by
    /// declaration order (0-based).
    pub fn array(mut self, name: &'static str, bytes: u64) -> Self {
        self.arrays.push(ArraySpec { name, bytes });
        self
    }

    /// Appends a serial section with no memory traffic.
    pub fn serial(self, work: u64) -> Self {
        self.serial_with(work, Vec::new())
    }

    /// Appends a serial section that also touches global memory.
    pub fn serial_with(mut self, work: u64, accesses: Vec<AccessPattern>) -> Self {
        self.phases.push(Phase::Serial {
            work: Cycles(work),
            accesses,
        });
        self
    }

    /// Appends a main-cluster-only loop.
    pub fn cluster_loop(mut self, iters: u32, body: BodySpec) -> Self {
        self.phases.push(Phase::ClusterLoop { iters, body });
        self
    }

    /// Appends a hierarchical SDOALL/CDOALL nest.
    pub fn sdoall(mut self, outer: u32, inner: u32, body: BodySpec) -> Self {
        self.phases.push(Phase::Sdoall { outer, inner, body });
        self
    }

    /// Appends a flat XDOALL.
    pub fn xdoall(mut self, iters: u32, body: BodySpec) -> Self {
        self.phases.push(Phase::Xdoall { iters, body });
        self
    }

    /// Appends a main-cluster DOACROSS with a serialized region of
    /// `serial_region` cycles per iteration.
    pub fn doacross(mut self, iters: u32, body: BodySpec, serial_region: u64) -> Self {
        self.phases.push(Phase::Doacross {
            iters,
            body,
            serial_region: Cycles(serial_region),
        });
        self
    }

    /// Wraps the phases built by `inner` in a `Repeat` (time-step loop).
    pub fn repeat(mut self, times: u32, inner: impl FnOnce(AppBuilder) -> AppBuilder) -> Self {
        let sub = inner(AppBuilder::new(self.name));
        assert!(
            sub.arrays.is_empty(),
            "declare arrays on the outer builder, not inside repeat()"
        );
        self.phases.push(Phase::Repeat {
            times,
            phases: sub.phases,
        });
        self
    }

    /// Finalizes and validates the model.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`AppSpec::validate`].
    pub fn build(self) -> AppSpec {
        let spec = AppSpec {
            name: self.name,
            arrays: self.arrays,
            phases: self.phases,
        };
        spec.validate();
        spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_nested_repeats() {
        let app = AppBuilder::new("T")
            .array("a", 64 * 1024)
            .repeat(3, |b| {
                b.serial(100)
                    .xdoall(4, BodySpec::compute(10))
                    .cluster_loop(2, BodySpec::compute(5))
            })
            .build();
        assert_eq!(app.flattened().len(), 9);
        assert_eq!(app.total_bodies(), 3 * (4 + 2));
        assert!(app.uses_xdoall());
        assert!(!app.uses_sdoall());
    }

    #[test]
    #[should_panic(expected = "outer builder")]
    fn arrays_inside_repeat_are_rejected() {
        AppBuilder::new("T")
            .repeat(2, |b| b.array("bad", 10))
            .build();
    }

    #[test]
    #[should_panic(expected = "missing array")]
    fn build_validates() {
        AppBuilder::new("T")
            .serial_with(1, vec![AccessPattern::sweep(0, 1)])
            .build();
    }
}
