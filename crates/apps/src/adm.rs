//! ADM — air-pollution dispersion model (pseudo-spectral transport).
//!
//! Paper anchors:
//!
//! * "ADM uses only the flat XDOALL construct" (§2).
//! * The worst scaling cliff of the suite: speedup 8.52 at 16p but only
//!   8.84 at 32p — adding the last 16 processors buys almost nothing
//!   (Table 1). Average concurrency 13.56, parallel-loop concurrency
//!   ≈5.9 per cluster at 32p (Table 3).
//! * Its xdoall distribution overhead is the poster child of §6's
//!   "over 10% of the completion time on a 4-cluster/32-processor
//!   Cedar".
//!
//! The model: 60 transport steps of four flat XDOALL loops with only 40
//! iterations each — barely more than one iteration per CE at 32p, so
//! every CE pays the lock-protocol pickup cost for little work, and the
//! iteration lock becomes a hot spot exactly as §6 describes.

use crate::builder::AppBuilder;
use crate::spec::{AccessPattern, AppSpec, BodySpec};

/// Builds the ADM model.
pub fn spec() -> AppSpec {
    AppBuilder::new("ADM")
        .array("conc", 512 * 1024)
        .array("wind", 256 * 1024)
        .array("spec work", 256 * 1024)
        .repeat(21, |b| {
            let mut b = b.serial_with(12_000, vec![AccessPattern::sweep(2, 8)]);
            // Transport sub-steps: flat loops with only 16 chunky
            // iterations — fewer than the full machine has processors,
            // so the second half of the machine adds nothing (Table 1's
            // 8.52 -> 8.84 saturation).
            for stage in 0..6usize {
                b = b.xdoall(
                    16,
                    BodySpec::compute(3_200)
                        .with_jitter(10)
                        .with_access(AccessPattern::sweep(stage % 2, 10)),
                );
            }
            // Deposition bookkeeping on the main cluster.
            b.cluster_loop(10, BodySpec::compute(300))
        })
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adm_uses_only_the_flat_construct() {
        let s = spec();
        assert!(s.uses_xdoall());
        assert!(!s.uses_sdoall(), "§2: ADM has no sdoall loops");
    }

    #[test]
    fn adm_xdoall_loops_are_iteration_starved_at_32p() {
        for p in spec().flattened() {
            if let crate::spec::Phase::Xdoall { iters, .. } = p {
                assert!(iters < 32, "fewer iterations than CEs at 32p");
            }
        }
    }

    #[test]
    fn adm_validates() {
        spec().validate();
    }
}
