//! MDG — molecular dynamics of liquid water (ordinary differential
//! equation integration over particle pairs).
//!
//! Paper anchors:
//!
//! * "MDG obtains nearly linear speedups as more number of processors
//!   are utilized. This is because of the high degree of parallelism
//!   (reflected by the high average concurrency/processor utilization
//!   values)" (§3.1) — speedup 24.43 at 32p, concurrency 28.82
//!   (Table 1), parallel-loop concurrency ≈7.9 per cluster (Table 3).
//! * Lowest contention overhead at small scale (1.3% at 4p), rising to
//!   13.4% at 32p (Table 4) — bodies are compute-dominated (pair force
//!   evaluations) with light global traffic.
//! * Smallest OS overhead percentage in Table 2 (its completion time is
//!   the longest, diluting fixed-rate OS activity).
//!
//! The model: 25 integration steps; three large SDOALL force loops with
//! perfectly balanced 32-iteration inner loops and heavyweight bodies,
//! one flat XDOALL neighbour-list update over 256 molecules, a small
//! cluster-only reduction and a short serial section.

use crate::builder::AppBuilder;
use crate::spec::{AccessPattern, AppSpec, BodySpec};

/// Builds the MDG model.
pub fn spec() -> AppSpec {
    AppBuilder::new("MDG")
        .array("pos", 512 * 1024)
        .array("vel", 512 * 1024)
        .array("force", 512 * 1024)
        .array("nbr", 256 * 1024)
        .repeat(15, |b| {
            let mut b = b.serial_with(5_000, vec![AccessPattern::sweep(1, 8)]);
            // Force evaluation: large-granularity, compute-dominated.
            for stage in 0..3usize {
                b = b.sdoall(
                    16,
                    32, // divisible by 8: near-perfect balance
                    BodySpec::compute(1_800)
                        .with_jitter(4)
                        .with_access(AccessPattern::sweep(stage % 3, 8)),
                );
            }
            // Neighbour-list update: flat xdoall, chunky iterations.
            b = b.xdoall(
                256,
                BodySpec::compute(2_200)
                    .with_jitter(5)
                    .with_access(AccessPattern::sweep(3, 8)),
            );
            // Energy reduction on the main cluster.
            b.cluster_loop(16, BodySpec::compute(400))
        })
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mdg_uses_both_constructs() {
        let s = spec();
        assert!(s.uses_sdoall());
        assert!(s.uses_xdoall());
    }

    #[test]
    fn mdg_bodies_are_compute_dominated() {
        // Light traffic relative to compute is what keeps MDG's
        // contention low (Table 4): > 100 compute cycles per dword.
        for p in spec().flattened() {
            if let crate::spec::Phase::Sdoall { body, .. } = p {
                assert!(body.compute.0 / body.words() > 100);
            }
        }
    }

    #[test]
    fn mdg_inner_loops_are_perfectly_balanced() {
        for p in spec().flattened() {
            if let crate::spec::Phase::Sdoall { inner, .. } = p {
                assert_eq!(inner % 8, 0);
            }
        }
    }

    #[test]
    fn mdg_validates() {
        spec().validate();
    }
}
