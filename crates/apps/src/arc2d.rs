//! ARC2D — implicit finite-difference fluid dynamics (2-D Euler,
//! rapid elliptic solver kernels).
//!
//! Paper anchors:
//!
//! * Uses both SDOALL/CDOALL and XDOALL constructs (§2).
//! * Good scaling: speedup 15.06 at 32p, average concurrency 20.56
//!   (Table 1); parallel-loop concurrency ≈7.2–7.6 per cluster
//!   (Table 3) — inner loops balance well on 8 CEs.
//! * Contention overhead grows 3.4% → 14.1% from 4p to 32p (Table 4).
//! * Largest OS overhead of the three apps detailed in Table 2 (cpi
//!   5.62 s, ctx 2.91 s at 32p) — ARC2D is the longest-running of the
//!   three there, with steady paging traffic.
//!
//! The model: 40 implicit time steps; each sweeps four SDOALL stages
//! (x/y direction implicit solves) with well-balanced 16-iteration inner
//! loops, two XDOALL stages (pentadiagonal back-substitutions converted
//! flat "for convenience", §6), a boundary cluster loop and a short
//! serial section.

use crate::builder::AppBuilder;
use crate::spec::{AccessPattern, AppSpec, BodySpec};

/// Builds the ARC2D model.
pub fn spec() -> AppSpec {
    AppBuilder::new("ARC2D")
        .array("q (state)", 512 * 1024)
        .array("rhs", 512 * 1024)
        .array("coef", 256 * 1024)
        .array("work", 256 * 1024)
        .repeat(20, |b| {
            let mut b = b.serial_with(8_000, vec![AccessPattern::sweep(0, 8)]);
            // Implicit sweeps: balanced inner loops, moderate traffic.
            for stage in 0..4usize {
                let src = stage % 2; // q or rhs
                b = b.sdoall(
                    12,
                    24, // divisible by 8: high parallel-loop concurrency
                    BodySpec::compute(800)
                        .with_jitter(6)
                        .with_access(AccessPattern::sweep(src, 12)),
                );
            }
            // Back-substitutions: flat xdoall over 64 rows.
            for _ in 0..2 {
                b = b.xdoall(
                    64,
                    BodySpec::compute(1_800)
                        .with_jitter(8)
                        .with_access(AccessPattern::sweep(1, 12)),
                );
            }
            // Boundary conditions on the main cluster.
            b = b.cluster_loop(
                16,
                BodySpec::compute(300).with_access(AccessPattern::sweep(3, 8)),
            );
            // Residual smoothing recurrence: a main-cluster doacross with
            // a short serialized region per row (§2's CDOACROSS).
            b.doacross(
                12,
                BodySpec::compute(250).with_access(AccessPattern::sweep(3, 8)),
                60,
            )
        })
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arc2d_uses_both_constructs() {
        let s = spec();
        assert!(s.uses_sdoall());
        assert!(s.uses_xdoall());
    }

    #[test]
    fn arc2d_inner_loops_balance_on_eight_ces() {
        for p in spec().flattened() {
            if let crate::spec::Phase::Sdoall { inner, .. } = p {
                assert_eq!(inner % 8, 0, "balance drives Table 3's ~7.5");
            }
        }
    }

    #[test]
    fn arc2d_runs_many_loop_bodies() {
        // Sanity on scale: ARC2D runs a lot of loop bodies.
        assert!(spec().total_bodies() > 20_000);
    }

    #[test]
    fn arc2d_validates() {
        spec().validate();
    }
}
