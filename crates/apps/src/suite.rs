//! The Perfect Benchmark suite registry.

use crate::spec::AppSpec;
use crate::{adm, arc2d, flo52, mdg, ocean};

/// The five applications, in the order the paper's tables list them:
/// FLO52, ARC2D, MDG, OCEAN, ADM.
pub fn perfect_suite() -> Vec<AppSpec> {
    vec![
        flo52::spec(),
        arc2d::spec(),
        mdg::spec(),
        ocean::spec(),
        adm::spec(),
    ]
}

/// Looks an application model up by (case-insensitive) name.
pub fn app_by_name(name: &str) -> Option<AppSpec> {
    perfect_suite()
        .into_iter()
        .find(|a| a.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_five_apps_in_table_order() {
        let names: Vec<_> = perfect_suite().iter().map(|a| a.name).collect();
        assert_eq!(names, vec!["FLO52", "ARC2D", "MDG", "OCEAN", "ADM"]);
    }

    #[test]
    fn all_suite_apps_validate() {
        for app in perfect_suite() {
            app.validate();
        }
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert!(app_by_name("flo52").is_some());
        assert!(app_by_name("Mdg").is_some());
        assert!(app_by_name("nope").is_none());
    }

    #[test]
    fn construct_usage_matches_section2() {
        // §2: FLO52 only hierarchical; ADM only flat; others both.
        let suite = perfect_suite();
        let by = |n: &str| suite.iter().find(|a| a.name == n).unwrap();
        assert!(!by("FLO52").uses_xdoall());
        assert!(!by("ADM").uses_sdoall());
        for n in ["ARC2D", "MDG", "OCEAN"] {
            assert!(by(n).uses_sdoall() && by(n).uses_xdoall());
        }
    }
}
